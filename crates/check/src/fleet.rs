//! Dimension 9: fleet shard aggregation vs a brute-force oracle.
//!
//! `ripple-fleet` merges per-instance trace shards into a weighted
//! per-service profile with [`merge_weighted_counts`]. The semantics it
//! promises are exactly "as if each shard had been replayed `weight`
//! times in one long trace": this dimension fuzzes that claim against
//! the physical oracle — concatenate every shard `weight` times into one
//! [`BbTrace`] and run the plain [`line_access_counts`] profiler over it.
//! The merged counts, the shard-order-permuted merged counts, and the
//! downstream temperature classification must all agree exactly.
//!
//! [`BbTrace`]: ripple_trace::BbTrace

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng, StdRng};
use ripple::{line_access_counts, temperatures_from_counts};
use ripple_fleet::merge_weighted_counts;
use ripple_program::{Layout, LayoutConfig, LineAddr, Program};
use ripple_trace::BbTrace;
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

use crate::shrink::min_failing_prefix;

/// One generated aggregation case: a service binary plus weighted shards.
struct FleetCase {
    label: String,
    program: Program,
    layout: Layout,
    shards: Vec<(BbTrace, u64)>,
}

impl FleetCase {
    /// The case restricted to its first `n` shards (shrinking step).
    fn truncated(&self, n: usize) -> FleetCase {
        FleetCase {
            label: format!("{} (first {n} shards)", self.label),
            program: self.program.clone(),
            layout: self.layout.clone(),
            shards: self.shards[..n].to_vec(),
        }
    }
}

fn gen_fleet_case(seed: u64) -> FleetCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf1ee_7a66_4e6a_7e5d);
    let spec = AppSpec::tiny(rng.next_u64());
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let num_shards = rng.gen_range(1..=6usize);
    let shards: Vec<(BbTrace, u64)> = (0..num_shards)
        .map(|i| {
            let variant = rng.gen_range(0..4u32);
            let budget = rng.gen_range(500..4000u64);
            let weight = rng.gen_range(1..=4u64);
            let input = InputConfig::numbered(variant, seed ^ (i as u64));
            (execute(&app.program, &app.model, input, budget), weight)
        })
        .collect();
    FleetCase {
        label: format!("seed {seed:#x}: {num_shards} shards over {}", spec.name),
        program: app.program,
        layout,
        shards,
    }
}

/// The brute-force oracle: each shard physically repeated `weight` times
/// in one long trace, profiled by the plain (unweighted) counter.
fn oracle_counts(case: &FleetCase) -> BTreeMap<LineAddr, u64> {
    let mut big = BbTrace::default();
    for (trace, weight) in &case.shards {
        for _ in 0..*weight {
            big.extend_from(trace);
        }
    }
    line_access_counts(&case.layout, &big).into_iter().collect()
}

fn merged_counts(case: &FleetCase, reverse: bool) -> BTreeMap<LineAddr, u64> {
    let mut pairs: Vec<(&BbTrace, u64)> = case.shards.iter().map(|(t, w)| (t, *w)).collect();
    if reverse {
        pairs.reverse();
    }
    merge_weighted_counts(&case.layout, &pairs)
}

/// The divergence test applied to one case.
fn violation(case: &FleetCase) -> Option<String> {
    let oracle = oracle_counts(case);
    let merged = merged_counts(case, false);
    if merged != oracle {
        let diff = oracle
            .iter()
            .find(|(line, count)| merged.get(line) != Some(count))
            .map(|(line, _)| format!("first divergent line {line:?}"))
            .unwrap_or_else(|| "merged has extra lines".to_string());
        return Some(format!(
            "weighted merge disagrees with physical-repetition oracle ({diff})"
        ));
    }
    let reversed = merged_counts(case, true);
    if reversed != merged {
        return Some("weighted merge is shard-order dependent".to_string());
    }
    let t_merged = temperatures_from_counts(merged);
    let t_oracle = temperatures_from_counts(oracle);
    if t_merged != t_oracle {
        return Some(
            "temperature classification diverges between merged and oracle profiles".to_string(),
        );
    }
    None
}

/// Checks one generated case; shrinks the shard list on failure.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    let case = gen_fleet_case(seed);
    let Some(message) = violation(&case) else {
        return Ok(());
    };
    let n = min_failing_prefix(case.shards.len(), |n| {
        n > 0 && violation(&case.truncated(n)).is_some()
    });
    let minimal = case.truncated(n.max(1));
    let final_message = violation(&minimal)
        .unwrap_or_else(|| "shrunk case no longer fails (shrinker artifact)".to_string());
    let repro = format!(
        "case: {}\nshards shrunk {} -> {}\n{}",
        minimal.label,
        case.shards.len(),
        minimal.shards.len(),
        final_message,
    );
    Err((message, repro))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_matches_oracle_on_many_seeds() {
        for seed in 0..16 {
            if let Err((msg, repro)) = check(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn oracle_actually_exercises_weights() {
        // Guard against a degenerate generator: at least one seed in the
        // smoke range must produce a shard with weight > 1 (otherwise the
        // weighted path collapses to the unweighted one).
        let weighted = (0..16).any(|seed| gen_fleet_case(seed).shards.iter().any(|(_, w)| *w > 1));
        assert!(weighted, "no generated case used a weight > 1");
    }
}
