//! Dimension 10: declarative lab experiments vs brute-force oracles.
//!
//! `ripple-lab` expands an [`Experiment`]'s parameter grid and executes it
//! on the shared harness with a byte-determinism promise. This dimension
//! fuzzes random declarations against independent oracles: the expanded
//! grid must equal a mixed-radix decoding of every index (count, order
//! and coordinates — checked without re-running the expansion's nested
//! loops), resolution must dedup every axis keeping first occurrences,
//! the grid must be duplicate-free and identical across repeated
//! expansions, and the declaration must survive a JSON round trip
//! unchanged. On a bounded subset of seeds a tiny experiment actually
//! runs end to end: the emitted `ripple.lab_report.v1` document must be
//! byte-identical at 1 and 3 threads and pass [`validate_lab_report`].

use rand::{Rng, SeedableRng, StdRng};
use ripple_json::ToJson;
use ripple_lab::{run_experiment, validate_lab_report, Experiment, LabOptions, TARGET_PROFILES};
use ripple_sim::{PolicyKind, PolicyRegistry};
use ripple_workloads::App;

/// Picks 1..=max entries from `pool`, duplicates allowed on purpose:
/// resolution promises to dedup, so duplicated declarations are exactly
/// the interesting inputs.
fn pick_names(rng: &mut StdRng, pool: &[&str], max: usize) -> Vec<String> {
    let n = rng.gen_range(1..=max.min(pool.len()));
    (0..n)
        .map(|_| pool[rng.gen_range(0..pool.len())].to_string())
        .collect()
}

fn app_pool() -> Vec<&'static str> {
    App::ALL.iter().map(|a| a.name()).collect()
}

fn online_policy_pool() -> Vec<&'static str> {
    PolicyRegistry::global()
        .online()
        .map(PolicyKind::name)
        .collect()
}

/// A random declaration exercising every axis, including the expansion
/// tokens and deliberate duplicates/aliases.
fn gen_declaration(rng: &mut StdRng) -> Experiment {
    let profile_pool: Vec<&str> = TARGET_PROFILES.iter().map(|p| p.name).collect();
    let policies = match rng.gen_range(0..3u32) {
        0 => Vec::new(),
        1 => vec!["@priors".to_string()],
        _ => pick_names(rng, &online_policy_pool(), 2),
    };
    let ripple_underlying = match rng.gen_range(0..3u32) {
        0 => Vec::new(),
        1 => vec!["lru".to_string()],
        _ => vec!["@underlying-agnostic".to_string()],
    };
    let thresholds = if ripple_underlying.is_empty() && rng.gen_bool(0.5) {
        Vec::new()
    } else {
        let pool = [0.0, 0.25, 0.5, 0.5, 0.75, 1.0];
        let n = rng.gen_range(1..=3usize);
        (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
    };
    Experiment {
        name: "check".to_string(),
        description: String::new(),
        instructions: rng.gen_range(5_000..20_000u64),
        profiles: pick_names(rng, &profile_pool, 3),
        apps: pick_names(rng, &app_pool(), 3),
        prefetchers: pick_names(rng, &["none", "nlp", "next-line", "fdip"], 3),
        policies,
        ripple_underlying,
        thresholds,
        fault_modes: pick_names(rng, &["none", "bitflip"], 2),
        replay_shards: {
            let pool = [1usize, 2, 4];
            let n = rng.gen_range(1..=2usize);
            (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
        },
    }
}

/// A deliberately tiny declaration (one app, one point-ish grid) cheap
/// enough to execute end to end inside the fuzz loop.
fn gen_tiny_declaration(rng: &mut StdRng) -> Experiment {
    let apps = app_pool();
    Experiment {
        name: "check-run".to_string(),
        description: String::new(),
        instructions: rng.gen_range(5_000..10_000u64),
        profiles: vec!["paper".to_string()],
        apps: vec![apps[rng.gen_range(0..apps.len())].to_string()],
        prefetchers: vec![["none", "nlp", "fdip"][rng.gen_range(0..3usize)].to_string()],
        policies: if rng.gen_bool(0.5) {
            vec!["random".to_string()]
        } else {
            Vec::new()
        },
        ripple_underlying: if rng.gen_bool(0.5) {
            vec!["lru".to_string()]
        } else {
            Vec::new()
        },
        thresholds: vec![0.5],
        fault_modes: if rng.gen_bool(0.25) {
            vec!["none".to_string(), "bitflip".to_string()]
        } else {
            vec!["none".to_string()]
        },
        replay_shards: vec![1],
    }
}

fn dup_free<T: PartialEq>(axis: &[T]) -> bool {
    axis.iter().enumerate().all(|(i, x)| !axis[..i].contains(x))
}

/// The expansion/resolution/round-trip oracle applied to one declaration.
fn expansion_violation(decl: &Experiment) -> Option<String> {
    let resolved = match decl.resolve() {
        Ok(r) => r,
        Err(e) => return Some(format!("generated declaration failed to resolve: {e}")),
    };
    // Every resolved axis must be deduped (first occurrence wins is
    // implied: resolution preserves declaration order).
    let profile_names: Vec<&str> = resolved.profiles.iter().map(|p| p.name).collect();
    if !(dup_free(&profile_names)
        && dup_free(&resolved.apps)
        && dup_free(&resolved.prefetchers)
        && dup_free(&resolved.policies)
        && dup_free(&resolved.ripple_underlying)
        && dup_free(&resolved.thresholds)
        && dup_free(&resolved.fault_modes)
        && dup_free(&resolved.replay_shards))
    {
        return Some("a resolved axis still contains duplicates".to_string());
    }

    let points = resolved.expand();
    // The grid's shape, decoded per index with mixed-radix arithmetic —
    // an independent formulation of "cartesian product in nested
    // declaration order, replay shards innermost".
    let dims = [
        resolved.profiles.len(),
        resolved.apps.len(),
        resolved.prefetchers.len(),
        resolved.fault_modes.len(),
        resolved.replay_shards.len(),
    ];
    let expected: usize = dims.iter().product();
    if points.len() != expected || points.len() != resolved.num_points() {
        return Some(format!(
            "expansion has {} points; axis product is {expected}, num_points() {}",
            points.len(),
            resolved.num_points()
        ));
    }
    for (i, p) in points.iter().enumerate() {
        let mut rest = i;
        let shard = rest % dims[4];
        rest /= dims[4];
        let fault = rest % dims[3];
        rest /= dims[3];
        let pf = rest % dims[2];
        rest /= dims[2];
        let app = rest % dims[1];
        let profile = rest / dims[1];
        if p.profile.name != resolved.profiles[profile].name
            || p.app != resolved.apps[app]
            || p.prefetcher != resolved.prefetchers[pf]
            || p.fault != resolved.fault_modes[fault]
            || p.replay_shards != resolved.replay_shards[shard]
        {
            return Some(format!("point {i} disagrees with its mixed-radix decoding"));
        }
    }
    if !dup_free(&points) {
        return Some("expanded grid contains duplicate points".to_string());
    }
    if points != resolved.expand() {
        return Some("two expansions of one declaration differ".to_string());
    }

    // A declaration is data: serialize, parse back, must be identical.
    let text = ToJson::to_json(decl).to_pretty_string();
    match Experiment::parse(&text) {
        Err(e) => Some(format!("serialized declaration failed to parse: {e}")),
        Ok(back) if back != *decl => {
            Some("declaration changed across a JSON round trip".to_string())
        }
        Ok(_) => None,
    }
}

/// The end-to-end oracle: run a tiny experiment at 1 and 3 threads; the
/// rendered reports must be byte-identical and self-validate. A typed
/// error is a legal outcome for `bitflip` declarations (the corrupt span
/// can destroy a tiny trace outright) — but then both thread counts must
/// fail identically: success, failure and the failure message are all
/// part of the determinism promise.
fn execution_violation(decl: &Experiment) -> Option<String> {
    let resolved = match decl.resolve() {
        Ok(r) => r,
        Err(e) => return Some(format!("tiny declaration failed to resolve: {e}")),
    };
    let run_at = |threads: usize| {
        run_experiment(
            &resolved,
            &LabOptions {
                threads: Some(threads),
                ..LabOptions::default()
            },
        )
    };
    match (run_at(1), run_at(3)) {
        (Ok(one), Ok(three)) => {
            if one.report.to_pretty_string() != three.report.to_pretty_string() {
                return Some("lab report differs between 1 and 3 threads".to_string());
            }
            if let Err(e) = validate_lab_report(&one.report) {
                return Some(format!("emitted report failed validation: {e}"));
            }
            None
        }
        (Err(one), Err(three)) => {
            if one.to_string() != three.to_string() {
                return Some(format!(
                    "failure message depends on thread count: {one} vs {three}"
                ));
            }
            if !decl.fault_modes.iter().any(|m| m == "bitflip") {
                return Some(format!("fault-free experiment failed: {one}"));
            }
            None
        }
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => Some(format!(
            "experiment outcome depends on thread count (one side failed: {e})"
        )),
    }
}

/// Checks one generated case. Declarations are a few list literals, so
/// failures print the offending JSON whole instead of shrinking it.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1ab5_eb07_4e6a_7e5d);
    let decl = gen_declaration(&mut rng);
    if let Some(message) = expansion_violation(&decl) {
        let repro = format!(
            "declaration:\n{}\n{message}",
            ToJson::to_json(&decl).to_pretty_string()
        );
        return Err((message, repro));
    }
    // Every fourth case also runs a tiny grid end to end (bounded: full
    // simulations dominate the corpus budget otherwise).
    if seed.is_multiple_of(4) {
        let tiny = gen_tiny_declaration(&mut rng);
        if let Some(message) = execution_violation(&tiny) {
            let repro = format!(
                "declaration:\n{}\n{message}",
                ToJson::to_json(&tiny).to_pretty_string()
            );
            return Err((message, repro));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_oracle_passes_on_many_seeds() {
        for seed in 1..24u64 {
            // Odd seeds skip the execution subset: this test covers the
            // cheap oracles densely.
            if let Err((msg, repro)) = check(seed * 2 + 1) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn execution_oracle_passes_on_a_few_seeds() {
        for seed in [0u64, 4, 8] {
            if let Err((msg, repro)) = check(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn generator_exercises_tokens_and_duplicates() {
        let mut saw_token = false;
        let mut saw_dup = false;
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1ab5_eb07_4e6a_7e5d);
            let d = gen_declaration(&mut rng);
            saw_token |= d.policies.iter().any(|p| p.starts_with('@'))
                || d.ripple_underlying.iter().any(|p| p.starts_with('@'));
            saw_dup |= !dup_free(&d.apps)
                || !dup_free(&d.profiles)
                || !dup_free(&d.prefetchers)
                || !dup_free(&d.thresholds);
        }
        assert!(
            saw_token,
            "no generated declaration used an expansion token"
        );
        assert!(saw_dup, "no generated declaration exercised dedup");
    }
}
