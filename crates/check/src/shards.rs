//! Dimension 8: replay shard-count invariance.
//!
//! `replay_shards` is a pure perf knob: partitioning the L1I sets across
//! N replay threads must leave both the [`SimStats`] and the full
//! eviction stream byte-identical to a single-shard run, whether the
//! policy actually shards (the set-local families) or falls back to
//! sequential replay (global-state policies like DRRIP or Random). Every
//! registered policy is fuzzed here, so a newly registered policy's
//! `set_local` claim is checked against its real replay behaviour on
//! random programs, geometries, prefetchers, eviction mechanisms and
//! scripted-invalidation schedules.
//!
//! [`SimStats`]: ripple_sim::SimStats

use std::sync::Arc;

use rand::{Rng, SeedableRng, StdRng};
use ripple_obs::MetricsRecorder;
use ripple_sim::{EvictionEvent, PolicyKind, SimSession, SimStats, VecSink};

use crate::case::{all_policies, gen_full_case, FullCase};
use crate::shrink::min_failing_prefix;

/// Picks the policy under test from the full registry (uniform, so the
/// sharding set-local families and the sequential-fallback families are
/// both exercised).
fn pick_policy(seed: u64) -> PolicyKind {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ea7_ba7c_4ed5_4a2d);
    let pool = all_policies();
    pool[rng.gen_range(0..pool.len())]
}

/// One captured-stream replay at a given shard count: stats plus the full
/// eviction stream.
fn run_sharded(
    case: &FullCase,
    policy: PolicyKind,
    shards: usize,
) -> (SimStats, Vec<EvictionEvent>) {
    let config = case.config.clone().with_replay_shards(shards);
    let session = SimSession::new(&case.program, &case.layout, &case.trace, config);
    // Record eagerly so online policies replay the captured stream too
    // (the dispatch only forces a capture when shards > 1; recording
    // up front keeps the 1-shard baseline on the same replay path).
    session.ensure_recorded();
    let mut sink = VecSink::new();
    let stats = session.run_with_sink(policy, &mut sink);
    (stats, sink.into_events())
}

/// The divergence test applied to one (case, policy) pair.
fn violation(case: &FullCase, policy: PolicyKind) -> Option<String> {
    let baseline = run_sharded(case, policy, 1);
    for shards in [2usize, 4, 7] {
        let sharded = run_sharded(case, policy, shards);
        if sharded != baseline {
            let what = if sharded.0 != baseline.0 {
                "stats".to_string()
            } else {
                let idx = sharded
                    .1
                    .iter()
                    .zip(baseline.1.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| baseline.1.len().min(sharded.1.len()));
                format!("eviction stream, first divergence at event {idx}")
            };
            return Some(format!(
                "{} replay diverges between 1 and {shards} shards ({what})",
                policy.name()
            ));
        }
    }
    None
}

/// Checks one generated case; shrinks the trace on failure.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    let case = gen_full_case(seed);
    let policy = pick_policy(seed);
    let Some(message) = violation(&case, policy) else {
        return Ok(());
    };
    let len = min_failing_prefix(case.trace.len(), |n| {
        violation(&case.truncated(n), policy).is_some()
    });
    let minimal = case.truncated(len);
    let final_message = violation(&minimal, policy).expect("shrunk case still fails");
    let repro = format!(
        "case: {}\npolicy: {policy:?}\ntrace shrunk {} -> {} blocks\n{}",
        minimal.label,
        case.trace.len(),
        minimal.trace.len(),
        final_message,
    );
    Err((message, repro))
}

/// [`check`]'s invariance with a live [`MetricsRecorder`] attached to the
/// sharded session: observation must not perturb results, and the
/// recording pass must still happen exactly once no matter how many
/// shards replay it.
pub fn check_recorded(seed: u64) -> Result<(), (String, String)> {
    let case = gen_full_case(seed);
    let policy = pick_policy(seed);
    let baseline = run_sharded(&case, policy, 1);

    let recorder = Arc::new(MetricsRecorder::new());
    let config = case.config.clone().with_replay_shards(4);
    let session = SimSession::new(&case.program, &case.layout, &case.trace, config)
        .with_recorder(recorder.clone());
    session.ensure_recorded();
    let mut sink = VecSink::new();
    let stats = session.run_with_sink(policy, &mut sink);
    let observed = (stats, sink.into_events());

    let problem = if observed != baseline {
        Some("observed 4-shard replay diverges from the unobserved 1-shard baseline".to_string())
    } else {
        let passes = session.recording_passes();
        (passes != 1).then(|| format!("4-shard session performed {passes} recording passes"))
    };
    problem.map_or(Ok(()), |message| {
        let repro = format!("case: {}\npolicy: {policy:?}\n{message}", case.label);
        Err((message, repro))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts_agree_on_many_seeds() {
        for seed in 0..12 {
            if let Err((msg, repro)) = check(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn observed_sharded_replay_matches_baseline_on_many_seeds() {
        for seed in 0..8 {
            if let Err((msg, repro)) = check_recorded(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }
}
