//! Dependency-free JSON for Ripple's serialized artifacts.
//!
//! The workspace has no network access at build time, so instead of serde it
//! uses this small crate for the few artifacts that cross process boundaries:
//! injection plans, application specifications, and the bench result grid.
//! Object key order is preserved, integers round-trip exactly, and floats are
//! printed with shortest-round-trip formatting so a parse → print → parse
//! cycle is lossless.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `i64` (covers negative and most positive ints).
    Int(i64),
    /// A positive integer above `i64::MAX`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Vec<(String, Value)>),
}

/// Error raised by parsing or typed extraction.
///
/// Parse errors carry the byte offset in the input where the problem was
/// detected ([`JsonError::offset`]); extraction errors (wrong type,
/// missing key) have no position because they operate on an already
/// parsed tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: Option<usize>,
}

impl JsonError {
    /// Creates an error with the given message and no input position.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    /// Creates an error anchored at a byte offset of the input document.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// Byte offset in the input where the error was detected, if this is
    /// a parse error.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(pos) => write!(f, "json error at byte {pos}: {}", self.message),
            None => write!(f, "json error: {}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Extracts a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other:?}"))),
        }
    }

    /// Extracts an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::UInt(u) => Ok(*u),
            other => Err(JsonError::new(format!("expected u64, got {other:?}"))),
        }
    }

    /// Extracts a signed integer.
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(JsonError::new(format!("expected i64, got {other:?}"))),
        }
    }

    /// Extracts a float (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Float(f) => Ok(*f),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// Extracts an array slice.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// Looks up an object member.
    pub fn get(&self, key: &str) -> Result<&Value, JsonError> {
        match self {
            Value::Object(members) => members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing key {key:?}"))),
            other => Err(JsonError::new(format!("expected object, got {other:?}"))),
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => write_f64(out, *f),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                })
            }
            Value::Object(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                })
            }
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let s = format!("{f:?}");
        out.push_str(&s);
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at(p.pos, "trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, "invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at(self.pos, "unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::at(self.pos, "unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::at(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError::at(self.pos, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::at(self.pos, "bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::at(self.pos, "bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our artifacts.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::at(self.pos, "bad \\u code point"))?,
                            );
                        }
                        _ => return Err(JsonError::at(self.pos - 1, "unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| JsonError::at(start, "invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError::at(start, format!("invalid number {text:?}")))
    }
}

/// Types that can render themselves as a [`Value`].
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait FromJson: Sized {
    /// Parses from a JSON value.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw)
                    .map_err(|_| JsonError::new(format!("{raw} out of range")))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, usize);

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl FromJson for u64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_u64()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.as_str()?.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

/// Builds an object value from `(key, value)` pairs.
pub fn object<const N: usize>(members: [(&str, Value); N]) -> Value {
    Value::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = object([
            ("name", Value::Str("tom \"cat\"".into())),
            ("n", Value::Int(42)),
            ("big", Value::UInt(u64::MAX)),
            ("neg", Value::Int(-7)),
            ("pi", Value::Float(3.25)),
            ("tiny", Value::Float(0.1)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "xs",
                Value::Array(vec![Value::Int(1), Value::Array(vec![]), object([])]),
            ),
        ]);
        for text in [v.to_compact_string(), v.to_pretty_string()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn float_shortest_roundtrip() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456.789, -2.5e300] {
            let text = Value::Float(f).to_compact_string();
            match parse(&text).unwrap() {
                Value::Float(g) => assert_eq!(f, g),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn integers_parse_exactly() {
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse("-9223372036854775808").unwrap(), Value::Int(i64::MIN));
        assert_eq!(parse("0").unwrap(), Value::Int(0));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "nul", "\"abc", "1 2", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_errors_carry_byte_offsets() {
        // (document, offset the error must point at)
        let cases = [
            ("", 0),             // empty input
            ("{", 1),            // truncated object: key expected at 1
            ("[1,", 3),          // truncated array: value expected at 3
            ("[1 2]", 3),        // missing comma
            ("{\"a\" 1}", 5),    // missing colon
            ("nulx", 0),         // bad literal starts at 0
            ("\"abc", 4),        // unterminated string
            ("\"a\\", 3),        // unterminated escape
            ("\"a\\u12", 4),     // truncated \u escape
            ("\"a\\q\"", 3),     // unknown escape points at the escape char
            ("12..5", 0),        // malformed number starts at 0
            ("{\"a\": 1} x", 9), // trailing characters
            ("[1, 2, nope]", 7), // nested error keeps its position
        ];
        for (doc, want) in cases {
            let err = parse(doc).unwrap_err();
            assert_eq!(
                err.offset(),
                Some(want),
                "{doc:?} should fail at byte {want}, got {err}"
            );
            assert!(
                err.to_string().contains(&format!("at byte {want}")),
                "{err}"
            );
        }
    }

    #[test]
    fn truncated_documents_fail_cleanly_at_every_prefix() {
        let full = r#"{"name": "tom \"cat\"", "xs": [1, -2.5e3, null], "ok": true}"#;
        assert!(parse(full).is_ok());
        for cut in 0..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let prefix = &full[..cut];
            let err = parse(prefix).expect_err("every proper prefix is incomplete");
            assert!(
                err.offset().is_some(),
                "prefix {prefix:?} should carry an offset"
            );
            assert!(err.offset().unwrap() <= prefix.len());
        }
    }

    #[test]
    fn extraction_errors_have_no_offset() {
        let v = parse("{\"a\": 1}").unwrap();
        assert_eq!(v.get("missing").unwrap_err().offset(), None);
        assert_eq!(v.as_array().unwrap_err().offset(), None);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("line\nbreak\ttab \\ \"q\" \u{1}".into());
        assert_eq!(parse(&v.to_compact_string()).unwrap(), v);
    }

    #[test]
    fn typed_extraction() {
        let v = parse("{\"a\": [1, 2], \"b\": 1.5}").unwrap();
        let xs: Vec<u32> = FromJson::from_json(v.get("a").unwrap()).unwrap();
        assert_eq!(xs, vec![1, 2]);
        assert_eq!(v.get("b").unwrap().as_f64().unwrap(), 1.5);
        assert!(v.get("missing").is_err());
        assert!(u32::from_json(v.get("b").unwrap()).is_err());
    }
}
