//! Experiment harness for regenerating every table and figure of the
//! Ripple paper.
//!
//! All figure benches share one *evaluation grid*: for each of the nine
//! applications and each prefetcher (none / NLP / FDIP), the grid holds
//! the stats of every replacement policy, the ideal bounds, and the
//! Ripple-LRU / Ripple-Random pipelines. Computing the grid is expensive,
//! so it is cached on disk (`target/ripple_grid_<budget>.json`) and reused
//! across bench targets; delete the file (or change
//! `RIPPLE_BENCH_INSTRS`) to recompute.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use ripple::{
    collect_profile, effective_threads, policy_matrix, profile_temperatures, sweep, Ripple,
    RippleConfig,
};
use ripple_json::{object, FromJson, JsonError, ToJson, Value};
use ripple_lab::TargetProfile;
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{
    simulate_ideal_cache, PolicyKind, PolicyRegistry, PrefetcherKind, SimConfig, SimSession,
    SimStats,
};
use ripple_trace::BbTrace;
use ripple_workloads::{generate, App, Application, InputConfig};

/// Instruction budget per application trace (`RIPPLE_BENCH_INSTRS`).
pub fn bench_budget() -> u64 {
    std::env::var("RIPPLE_BENCH_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// The target profile benches measure on (`RIPPLE_BENCH_PROFILE`, a
/// `ripple-lab` profile name; default `paper`, the paper's Table II).
pub fn bench_profile() -> &'static TargetProfile {
    let name = std::env::var("RIPPLE_BENCH_PROFILE").unwrap_or_else(|_| "paper".to_string());
    TargetProfile::find(&name).unwrap_or_else(|| {
        panic!(
            "RIPPLE_BENCH_PROFILE={name:?} names no target profile (valid: {})",
            ripple_lab::TARGET_PROFILES
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(" ")
        )
    })
}

/// Candidate invalidation thresholds for per-app tuning (§III-C: the
/// paper's winners lie in 0.45..=0.65).
pub const TUNE_THRESHOLDS: [f64; 3] = [0.45, 0.55, 0.65];

/// One policy's headline numbers relative to the LRU baseline.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Speedup over LRU, percent.
    pub speedup_pct: f64,
    /// Demand-miss MPKI.
    pub mpki: f64,
    /// Miss reduction over LRU, percent.
    pub miss_reduction_pct: f64,
    /// Absolute demand misses.
    pub demand_misses: u64,
}

impl PolicyRow {
    fn from_stats(stats: &SimStats, baseline: &SimStats) -> Self {
        PolicyRow {
            speedup_pct: stats.speedup_pct_over(baseline),
            mpki: stats.mpki(),
            miss_reduction_pct: stats.miss_reduction_pct_over(baseline),
            demand_misses: stats.demand_misses,
        }
    }
}

/// A Ripple pipeline's numbers.
#[derive(Debug, Clone)]
pub struct RippleRow {
    /// Headline numbers vs the LRU baseline.
    pub row: PolicyRow,
    /// Replacement coverage (Fig. 9), 0..=1.
    pub coverage: f64,
    /// Replacement accuracy (Fig. 10), 0..=1.
    pub accuracy: f64,
    /// Underlying hardware policy's own accuracy.
    pub underlying_accuracy: f64,
    /// Static instruction overhead, percent (Fig. 11).
    pub static_overhead_pct: f64,
    /// Dynamic instruction overhead, percent (Fig. 12).
    pub dynamic_overhead_pct: f64,
    /// The tuned invalidation threshold used.
    pub threshold: f64,
}

/// Everything measured for one (application, prefetcher) cell.
#[derive(Debug, Clone)]
pub struct AppCell {
    /// Application name.
    pub app: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// LRU baseline (speedup 0 by construction).
    pub lru: PolicyRow,
    /// Prior replacement policies, keyed by registered name (see
    /// [`prior_policies`]).
    pub policies: BTreeMap<String, PolicyRow>,
    /// Prefetch-aware ideal replacement (Demand-MIN; OPT when no
    /// prefetcher).
    pub ideal: PolicyRow,
    /// Ideal cache (no misses at all).
    pub ideal_cache: PolicyRow,
    /// Ripple over an underlying LRU.
    pub ripple_lru: RippleRow,
    /// Ripple over an underlying Random policy.
    pub ripple_random: RippleRow,
    /// Compulsory MPKI (§II-D).
    pub compulsory_mpki: f64,
}

/// The whole evaluation grid.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Instruction budget the grid was computed with.
    pub budget: u64,
    /// Cache-geometry fingerprint of the target profile the grid was
    /// measured on (see [`TargetProfile::fingerprint`]). A cached grid
    /// from a different geometry holds figures for a different machine
    /// and must never be reused.
    pub geometry: String,
    /// One cell per (app, prefetcher).
    pub cells: Vec<AppCell>,
}

impl Grid {
    /// The cell for `app` under `prefetcher`.
    pub fn cell(&self, app: App, prefetcher: PrefetcherKind) -> &AppCell {
        self.cells
            .iter()
            .find(|c| c.app == app.name() && c.prefetcher == prefetcher.name())
            .expect("grid contains every (app, prefetcher) cell")
    }

    /// Mean of `f` over the nine applications for one prefetcher.
    pub fn mean<F: Fn(&AppCell) -> f64>(&self, prefetcher: PrefetcherKind, f: F) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.prefetcher == prefetcher.name())
            .map(f)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

impl ToJson for PolicyRow {
    fn to_json(&self) -> Value {
        object([
            ("speedup_pct", self.speedup_pct.to_json()),
            ("mpki", self.mpki.to_json()),
            ("miss_reduction_pct", self.miss_reduction_pct.to_json()),
            ("demand_misses", self.demand_misses.to_json()),
        ])
    }
}

impl FromJson for PolicyRow {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(PolicyRow {
            speedup_pct: v.get("speedup_pct")?.as_f64()?,
            mpki: v.get("mpki")?.as_f64()?,
            miss_reduction_pct: v.get("miss_reduction_pct")?.as_f64()?,
            demand_misses: v.get("demand_misses")?.as_u64()?,
        })
    }
}

impl ToJson for RippleRow {
    fn to_json(&self) -> Value {
        object([
            ("row", self.row.to_json()),
            ("coverage", self.coverage.to_json()),
            ("accuracy", self.accuracy.to_json()),
            ("underlying_accuracy", self.underlying_accuracy.to_json()),
            ("static_overhead_pct", self.static_overhead_pct.to_json()),
            ("dynamic_overhead_pct", self.dynamic_overhead_pct.to_json()),
            ("threshold", self.threshold.to_json()),
        ])
    }
}

impl FromJson for RippleRow {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(RippleRow {
            row: PolicyRow::from_json(v.get("row")?)?,
            coverage: v.get("coverage")?.as_f64()?,
            accuracy: v.get("accuracy")?.as_f64()?,
            underlying_accuracy: v.get("underlying_accuracy")?.as_f64()?,
            static_overhead_pct: v.get("static_overhead_pct")?.as_f64()?,
            dynamic_overhead_pct: v.get("dynamic_overhead_pct")?.as_f64()?,
            threshold: v.get("threshold")?.as_f64()?,
        })
    }
}

impl ToJson for AppCell {
    fn to_json(&self) -> Value {
        let policies = Value::Object(
            self.policies
                .iter()
                .map(|(name, row)| (name.clone(), row.to_json()))
                .collect(),
        );
        object([
            ("app", self.app.to_json()),
            ("prefetcher", self.prefetcher.to_json()),
            ("lru", self.lru.to_json()),
            ("policies", policies),
            ("ideal", self.ideal.to_json()),
            ("ideal_cache", self.ideal_cache.to_json()),
            ("ripple_lru", self.ripple_lru.to_json()),
            ("ripple_random", self.ripple_random.to_json()),
            ("compulsory_mpki", self.compulsory_mpki.to_json()),
        ])
    }
}

impl FromJson for AppCell {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let mut policies = BTreeMap::new();
        match v.get("policies")? {
            Value::Object(entries) => {
                for (name, row) in entries {
                    policies.insert(name.clone(), PolicyRow::from_json(row)?);
                }
            }
            other => {
                return Err(JsonError::new(format!(
                    "policies: expected object, got {other:?}"
                )))
            }
        }
        Ok(AppCell {
            app: String::from_json(v.get("app")?)?,
            prefetcher: String::from_json(v.get("prefetcher")?)?,
            lru: PolicyRow::from_json(v.get("lru")?)?,
            policies,
            ideal: PolicyRow::from_json(v.get("ideal")?)?,
            ideal_cache: PolicyRow::from_json(v.get("ideal_cache")?)?,
            ripple_lru: RippleRow::from_json(v.get("ripple_lru")?)?,
            ripple_random: RippleRow::from_json(v.get("ripple_random")?)?,
            compulsory_mpki: v.get("compulsory_mpki")?.as_f64()?,
        })
    }
}

impl ToJson for Grid {
    fn to_json(&self) -> Value {
        object([
            ("budget", self.budget.to_json()),
            ("geometry", self.geometry.to_json()),
            ("cells", self.cells.to_json()),
        ])
    }
}

impl FromJson for Grid {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        // A cache written before the geometry field existed fails here,
        // which correctly falls through to a recompute.
        Ok(Grid {
            budget: v.get("budget")?.as_u64()?,
            geometry: String::from_json(v.get("geometry")?)?,
            cells: Vec::<AppCell>::from_json(v.get("cells")?)?,
        })
    }
}

/// A loaded application with its profiled trace.
pub struct LoadedApp {
    /// The generated application.
    pub app: Application,
    /// Its (pre-injection) layout.
    pub layout: Layout,
    /// The training/evaluation trace (input #0).
    pub trace: BbTrace,
}

/// Generates `app` and collects its input-#0 profile at the bench budget.
pub fn load_app(app: App, budget: u64) -> LoadedApp {
    let generated = generate(&app.spec());
    let layout = Layout::new(&generated.program, &LayoutConfig::default());
    let profile = collect_profile(
        &generated,
        &layout,
        InputConfig::training(app.spec().seed),
        budget,
    )
    .expect("profile collection is lossless");
    LoadedApp {
        app: generated,
        layout,
        trace: profile.trace,
    }
}

fn sim_config(prefetcher: PrefetcherKind) -> SimConfig {
    bench_profile().sim_config().with_prefetcher(prefetcher)
}

/// The prior policies compared in Figs. 3, 7 and 8: every registered
/// online policy except the LRU baseline, in registration order. The
/// offline ideals are excluded here because they need the session's
/// recorded [`FutureIndex`](ripple_sim::FutureIndex) and are reported
/// separately as the cell's ideal bound. A newly registered online policy
/// (e.g. TRRIP) lands in every figure with zero bench edits.
pub fn prior_policies() -> Vec<PolicyKind> {
    PolicyRegistry::global()
        .online()
        .filter(|&p| p != PolicyKind::LRU)
        .collect()
}

/// Computes one grid cell. `threshold` is the app's tuned invalidation
/// threshold (shared across prefetchers, like the paper's per-app tuning).
///
/// The policy runs (LRU, every registered prior, the ideal) share one
/// [`SimSession`] and run as parallel harness jobs; the cell's contents are
/// bit-identical at any worker count.
pub fn compute_cell(loaded: &LoadedApp, prefetcher: PrefetcherKind, threshold: f64) -> AppCell {
    let program = &loaded.app.program;
    let layout = &loaded.layout;
    let trace = &loaded.trace;
    let mut cfg = sim_config(prefetcher);
    // Line temperatures profiled once per cell: hint-driven policies
    // (TRRIP) consume them, everything else ignores the map.
    cfg.temperatures = Some(Arc::new(profile_temperatures(layout, trace)));
    let threads = effective_threads(None);

    let ideal_kind = if prefetcher == PrefetcherKind::None {
        PolicyKind::OPT
    } else {
        PolicyKind::DEMAND_MIN
    };
    let priors = prior_policies();
    let mut matrix = vec![PolicyKind::LRU];
    matrix.extend(&priors);
    matrix.push(ideal_kind);
    let session = SimSession::new(program, layout, trace, cfg.clone());
    let results = policy_matrix(&session, &matrix, threads).expect("policy matrix jobs");
    let lru = &results[0];
    let mut policies = BTreeMap::new();
    for (kind, r) in priors.iter().zip(&results[1..]) {
        policies.insert(kind.name().to_string(), PolicyRow::from_stats(r, lru));
    }
    let ideal = results.last().expect("matrix is non-empty");
    let ideal_cache = simulate_ideal_cache(program, trace, &cfg);

    let ripple_lru = run_ripple(loaded, prefetcher, PolicyKind::LRU, threshold, lru);
    let ripple_random = run_ripple(loaded, prefetcher, PolicyKind::RANDOM, threshold, lru);

    AppCell {
        app: loaded.app.name.clone(),
        prefetcher: prefetcher.name().to_string(),
        lru: PolicyRow::from_stats(lru, lru),
        policies,
        ideal: PolicyRow::from_stats(ideal, lru),
        ideal_cache: PolicyRow::from_stats(&ideal_cache, lru),
        ripple_lru,
        ripple_random,
        compulsory_mpki: lru.compulsory_mpki(),
    }
}

/// Runs the full Ripple pipeline for one underlying policy.
pub fn run_ripple(
    loaded: &LoadedApp,
    prefetcher: PrefetcherKind,
    underlying: PolicyKind,
    threshold: f64,
    lru_baseline: &SimStats,
) -> RippleRow {
    let config = RippleConfig {
        sim: sim_config(prefetcher),
        underlying,
        threshold,
        ..RippleConfig::default()
    };
    let ripple = Ripple::train(&loaded.app.program, &loaded.layout, &loaded.trace, config)
        .expect("bench config is valid");
    let o = ripple.evaluate(&loaded.trace).expect("evaluation");
    RippleRow {
        row: PolicyRow::from_stats(&o.ripple, lru_baseline),
        coverage: o.coverage.coverage(),
        accuracy: o.ripple_accuracy.accuracy(),
        underlying_accuracy: o.underlying_accuracy.accuracy(),
        static_overhead_pct: o.static_overhead_pct,
        dynamic_overhead_pct: o.dynamic_overhead_pct,
        threshold,
    }
}

/// Tunes the per-app, per-prefetcher invalidation threshold (the paper
/// tunes per application; winners land in 0.45..=0.65).
///
/// The candidate evaluations run through the shared harness's parallel
/// [`sweep`]; the first-listed threshold wins ties, as a sequential scan
/// would pick.
pub fn tune_threshold(loaded: &LoadedApp, prefetcher: PrefetcherKind) -> f64 {
    let config = RippleConfig {
        sim: sim_config(prefetcher),
        ..RippleConfig::default()
    };
    let ripple = Ripple::train(&loaded.app.program, &loaded.layout, &loaded.trace, config)
        .expect("bench config is valid");
    let points = sweep(&ripple, &loaded.trace, &TUNE_THRESHOLDS).expect("threshold sweep");
    let mut best = (f64::NEG_INFINITY, TUNE_THRESHOLDS[0]);
    for p in &points {
        if p.speedup_pct > best.0 {
            best = (p.speedup_pct, p.threshold);
        }
    }
    best.1
}

fn grid_path(budget: u64) -> PathBuf {
    // Benches run with the package directory as CWD; anchor the cache at
    // the workspace target directory instead.
    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    PathBuf::from(target).join(format!("ripple_grid_{budget}.json"))
}

/// Whether a cached grid can be reused for this run's configuration: the
/// same instruction budget, the same cache geometry, full
/// (app × prefetcher) coverage, and a row for every currently registered
/// prior policy. Anything else means the cells were measured under a
/// different experiment and the grid must be recomputed.
pub fn grid_is_fresh(grid: &Grid, budget: u64, geometry: &str) -> bool {
    let prior_names: Vec<&str> = prior_policies().iter().map(|p| p.name()).collect();
    let covers_registry = grid
        .cells
        .iter()
        .all(|c| prior_names.iter().all(|n| c.policies.contains_key(*n)));
    grid.budget == budget
        && grid.geometry == geometry
        && grid.cells.len() == App::ALL.len() * 3
        && covers_registry
}

/// Loads the cached grid or computes it (all 9 apps × 3 prefetchers).
pub fn ensure_grid() -> Grid {
    let budget = bench_budget();
    let geometry = bench_profile().fingerprint();
    let path = grid_path(budget);
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(grid) = ripple_json::parse(&text).and_then(|v| Grid::from_json(&v)) {
            // A cached grid is stale once a policy registers that its
            // cells never measured (e.g. a grid cached before TRRIP
            // landed) or once the target geometry changes
            // (RIPPLE_BENCH_PROFILE) — recompute instead of silently
            // reporting another machine's figures.
            if grid_is_fresh(&grid, budget, &geometry) {
                return grid;
            }
            eprintln!(
                "[ripple-bench] cached grid at {} is stale (budget/geometry/registry changed); recomputing",
                path.display()
            );
        }
    }
    eprintln!(
        "[ripple-bench] computing evaluation grid (budget {budget} instructions/app); \
         this runs once and is cached at {}",
        path.display()
    );
    let mut cells = Vec::new();
    for app in App::ALL {
        let t0 = std::time::Instant::now();
        let loaded = load_app(app, budget);
        let mut thresholds = Vec::new();
        for pf in [
            PrefetcherKind::None,
            PrefetcherKind::NextLine,
            PrefetcherKind::Fdip,
        ] {
            let threshold = tune_threshold(&loaded, pf);
            thresholds.push(threshold);
            cells.push(compute_cell(&loaded, pf, threshold));
        }
        eprintln!(
            "[ripple-bench]   {app}: thresholds {thresholds:?}, {:.1}s",
            t0.elapsed().as_secs_f64()
        );
    }
    let grid = Grid {
        budget,
        geometry,
        cells,
    };
    let _ = fs::write(&path, grid.to_json().to_pretty_string());
    grid
}

/// Prints a per-app figure series: one value per app plus the mean.
pub fn print_series(title: &str, unit: &str, rows: &[(String, f64)]) {
    println!("\n{title}");
    for (name, v) in rows {
        println!("  {name:<16} {v:>8.2} {unit}");
    }
    let mean = rows.iter().map(|r| r.1).sum::<f64>() / rows.len().max(1) as f64;
    println!("  {:<16} {mean:>8.2} {unit}", "MEAN");
}

/// `paper=` vs `measured=` comparison line (grepped into EXPERIMENTS.md).
pub fn print_paper_check(label: &str, paper: f64, measured: f64, unit: &str) {
    println!("check: {label}: paper={paper}{unit} measured={measured:.2}{unit}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_row() -> PolicyRow {
        PolicyRow {
            speedup_pct: 0.0,
            mpki: 0.0,
            miss_reduction_pct: 0.0,
            demand_misses: 0,
        }
    }

    fn trivial_ripple() -> RippleRow {
        RippleRow {
            row: trivial_row(),
            coverage: 0.0,
            accuracy: 0.0,
            underlying_accuracy: 0.0,
            static_overhead_pct: 0.0,
            dynamic_overhead_pct: 0.0,
            threshold: 0.5,
        }
    }

    fn synthetic_grid(budget: u64, geometry: &str) -> Grid {
        let mut cells = Vec::new();
        for app in App::ALL {
            for pf in [
                PrefetcherKind::None,
                PrefetcherKind::NextLine,
                PrefetcherKind::Fdip,
            ] {
                let mut policies = BTreeMap::new();
                for p in prior_policies() {
                    policies.insert(p.name().to_string(), trivial_row());
                }
                cells.push(AppCell {
                    app: app.name().to_string(),
                    prefetcher: pf.name().to_string(),
                    lru: trivial_row(),
                    policies,
                    ideal: trivial_row(),
                    ideal_cache: trivial_row(),
                    ripple_lru: trivial_ripple(),
                    ripple_random: trivial_ripple(),
                    compulsory_mpki: 0.0,
                });
            }
        }
        Grid {
            budget,
            geometry: geometry.to_string(),
            cells,
        }
    }

    /// Regression: a cached grid measured on one cache geometry must not
    /// be reused on another. Before the geometry fingerprint landed,
    /// freshness only keyed on budget + registry coverage, so switching
    /// the target profile silently reported another machine's figures.
    #[test]
    fn grid_from_another_geometry_is_stale() {
        let geometry = bench_profile().fingerprint();
        let grid = synthetic_grid(1000, &geometry);
        assert!(grid_is_fresh(&grid, 1000, &geometry));
        let other = TargetProfile::find("zen2")
            .expect("zen2 profile exists")
            .fingerprint();
        assert_ne!(geometry, other, "profiles must fingerprint distinctly");
        assert!(
            !grid_is_fresh(&grid, 1000, &other),
            "a geometry change must invalidate the cache"
        );
        assert!(
            !grid_is_fresh(&grid, 2000, &geometry),
            "a budget change must invalidate the cache"
        );
    }

    #[test]
    fn grid_missing_a_registered_policy_is_stale() {
        let geometry = bench_profile().fingerprint();
        let mut grid = synthetic_grid(1000, &geometry);
        let dropped = prior_policies()[0].name();
        grid.cells[0].policies.remove(dropped);
        assert!(!grid_is_fresh(&grid, 1000, &geometry));
    }

    #[test]
    fn grid_round_trips_through_json_with_geometry() {
        let grid = synthetic_grid(7, "l1i=32768x8 l2=x l3=x lat=1/2/3/4");
        let text = grid.to_json().to_pretty_string();
        let back =
            Grid::from_json(&ripple_json::parse(&text).expect("valid json")).expect("round trip");
        assert_eq!(back.geometry, grid.geometry);
        assert_eq!(back.budget, grid.budget);
        assert_eq!(back.cells.len(), grid.cells.len());
        // A legacy cache predating the geometry field fails to parse,
        // which ensure_grid treats as a recompute.
        let legacy = text.replace("\"geometry\"", "\"geometry_gone\"");
        assert!(
            Grid::from_json(&ripple_json::parse(&legacy).expect("valid json")).is_err(),
            "legacy caches must invalidate"
        );
    }
}
