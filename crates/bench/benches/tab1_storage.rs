//! Table I: replacement-policy metadata storage for a 32 KB, 8-way, 64 B
//! line I-cache.

use ripple_sim::{
    CacheGeometry, DrripPolicy, GhrpPolicy, HawkeyePolicy, LruPolicy, RandomPolicy,
    ReplacementPolicy, SrripPolicy,
};

fn main() {
    let geom = CacheGeometry::new(32 * 1024, 8);
    let policies: Vec<(Box<dyn ReplacementPolicy>, &str)> = vec![
        (Box::new(LruPolicy::new(geom)), "64 B"),
        (Box::new(RandomPolicy::new(geom, 1)), "—"),
        (Box::new(SrripPolicy::new(geom)), "128 B"),
        (Box::new(DrripPolicy::new(geom)), "128 B"),
        (Box::new(GhrpPolicy::new(geom)), "4.13 KB"),
        (Box::new(HawkeyePolicy::new(geom, true)), "5.1875 KB"),
    ];
    println!("\nTable I — Replacement metadata for a 32 KB / 8-way I-cache");
    println!("  {:<18} {:>12}   {:>12}", "policy", "measured", "paper");
    for (p, paper) in &policies {
        let bytes = p.metadata_bytes(&geom);
        let human = if bytes >= 1024 {
            format!("{:.4} KB", bytes as f64 / 1024.0)
        } else {
            format!("{bytes} B")
        };
        println!("  {:<18} {:>12}   {:>12}", p.name(), human, paper);
    }
    // Exact Table I values.
    assert_eq!(LruPolicy::new(geom).metadata_bytes(&geom), 64);
    assert_eq!(SrripPolicy::new(geom).metadata_bytes(&geom), 128);
    assert_eq!(DrripPolicy::new(geom).metadata_bytes(&geom), 128);
    assert_eq!(HawkeyePolicy::new(geom, true).metadata_bytes(&geom), 5312);
    assert_eq!(RandomPolicy::new(geom, 1).metadata_bytes(&geom), 0);
}
