//! Figure 10: Ripple's replacement accuracy per application. Paper: mean
//! 92 % (min 88 %), vs LRU's own 77.8 % average accuracy.

use ripple_bench::{ensure_grid, print_paper_check, print_series};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    let rows: Vec<(String, f64)> = App::ALL
        .iter()
        .map(|&a| {
            (
                a.name().to_string(),
                grid.cell(a, PrefetcherKind::None).ripple_lru.accuracy * 100.0,
            )
        })
        .collect();
    print_series("Fig. 10 — Ripple replacement accuracy", "%", &rows);
    let mean = grid.mean(PrefetcherKind::None, |c| c.ripple_lru.accuracy) * 100.0;
    let lru_mean = grid.mean(PrefetcherKind::None, |c| c.ripple_lru.underlying_accuracy) * 100.0;
    println!("  LRU's own eviction accuracy: {lru_mean:.1}%");
    print_paper_check("fig10 mean ripple accuracy", 92.0, mean, "%");
    print_paper_check("fig10 mean lru accuracy", 77.8, lru_mean, "%");
    assert!(
        mean > lru_mean,
        "ripple must evict more accurately than LRU ({mean:.1} !> {lru_mean:.1})"
    );
}
