//! Figure 7: Ripple-LRU / Ripple-Random vs prior policies and the ideal,
//! for each prefetcher. Paper means: Ripple-LRU +1.25 % (none), +2.13 %
//! (NLP), +1.4 % (FDIP); ideal +3.36/+3.87/+3.16 %.
//!
//! Thin wrapper over the declarative `fig07-speedup` experiment
//! (`experiments/fig07-speedup.json`). The declaration sweeps both
//! underlyings over the paper's winning threshold range; like the
//! legacy harness, the threshold is tuned on the LRU substrate and that
//! same tuned value is read off for Ripple-Random (the plan, not the
//! substrate, owns the threshold).

use ripple_bench::{bench_budget, bench_profile, print_paper_check};
use ripple_lab::{builtin, run_experiment, LabOptions, PointOutcome};
use ripple_sim::{PolicyKind, PrefetcherKind};

/// (ripple-lru, ripple-random) speedups at the LRU-tuned threshold.
fn ripple_pair(c: &PointOutcome) -> (f64, f64) {
    let lru_best = c
        .ripple
        .iter()
        .find(|r| r.underlying == "lru" && r.best)
        .expect("lru best row");
    let random = c
        .ripple
        .iter()
        .find(|r| r.underlying == "random" && r.threshold == lru_best.threshold)
        .expect("random row at the tuned threshold");
    (lru_best.row.speedup_pct, random.row.speedup_pct)
}

fn main() {
    let mut decl = builtin("fig07-speedup").expect("embedded declaration");
    decl.profiles = vec![bench_profile().name.to_string()];
    let resolved = decl.resolve().expect("declaration resolves");
    let options = LabOptions {
        instructions: Some(bench_budget()),
        ..LabOptions::default()
    };
    let run = run_experiment(&resolved, &options).expect("lab run");
    let profile = bench_profile().name;
    let n = resolved.apps.len() as f64;
    let mean = |pf: PrefetcherKind, f: &dyn Fn(&PointOutcome) -> f64| {
        resolved
            .apps
            .iter()
            .map(|a| {
                f(run
                    .outcome(profile, a.name(), pf)
                    .expect("grid covers every app"))
            })
            .sum::<f64>()
            / n
    };

    for (pf, paper_ripple, paper_ideal) in [
        (PrefetcherKind::None, 1.25, 3.36),
        (PrefetcherKind::NextLine, 2.13, 3.87),
        (PrefetcherKind::Fdip, 1.4, 3.16),
    ] {
        println!("\nFig. 7 — Speedup over LRU with {} (percent)", pf.name());
        println!(
            "  {:<16} {:>10} {:>13} {:>8} {:>8}",
            "app", "ripple-lru", "ripple-random", "best-prior", "ideal"
        );
        for &a in &resolved.apps {
            let c = run
                .outcome(profile, a.name(), pf)
                .expect("grid covers every app");
            let (rl, rr) = ripple_pair(c);
            let best_prior = c
                .policies
                .iter()
                .map(|(_, p)| p.speedup_pct)
                .fold(f64::NEG_INFINITY, f64::max);
            println!(
                "  {:<16} {:>10.2} {:>13.2} {:>8.2} {:>8.2}",
                a.name(),
                rl,
                rr,
                best_prior,
                c.ideal.speedup_pct
            );
        }
        let mean_rl = mean(pf, &|c| ripple_pair(c).0);
        let mean_rr = mean(pf, &|c| ripple_pair(c).1);
        let mean_ideal = mean(pf, &|c| c.ideal.speedup_pct);
        println!(
            "  {:<16} {:>10.2} {:>13.2} {:>8} {:>8.2}",
            "MEAN", mean_rl, mean_rr, "", mean_ideal
        );
        print_paper_check(
            &format!("fig7 mean ripple-lru speedup ({})", pf.name()),
            paper_ripple,
            mean_rl,
            "%",
        );
        print_paper_check(
            &format!("fig7 mean ideal speedup ({})", pf.name()),
            paper_ideal,
            mean_ideal,
            "%",
        );
        assert!(mean_rl <= mean_ideal, "ripple cannot beat the ideal policy");
    }
    // Headline shape: Ripple-LRU beats every prior policy's mean (within
    // measurement noise under the strongest prefetchers, where absolute
    // differences shrink to hundredths of a percent).
    for pf in [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Fdip,
    ] {
        let mean_rl = mean(pf, &|c| ripple_pair(c).0);
        for &p in &resolved.policies {
            // Two explicit exclusions from the "Ripple beats every prior"
            // bar: plain Random legitimately beats LRU on thrash-heavy
            // apps (classic cyclic-pattern behaviour), and TRRIP consumes
            // the same offline profile Ripple does, making it a peer
            // technique rather than a hardware-only prior.
            if p == PolicyKind::RANDOM || p == PolicyKind::TRRIP {
                continue;
            }
            let name = p.name();
            let mean_p = mean(pf, &|c| {
                c.policies
                    .iter()
                    .find(|(n, _)| n == name)
                    .expect("declared policy measured in every point")
                    .1
                    .speedup_pct
            });
            assert!(
                mean_rl >= mean_p - 0.25,
                "{}: ripple-lru ({mean_rl:.2}) must beat {name} ({mean_p:.2})",
                pf.name()
            );
        }
    }
}
