//! Figure 7: Ripple-LRU / Ripple-Random vs prior policies and the ideal,
//! for each prefetcher. Paper means: Ripple-LRU +1.25 % (none), +2.13 %
//! (NLP), +1.4 % (FDIP); ideal +3.36/+3.87/+3.16 %.

use ripple_bench::{ensure_grid, print_paper_check, prior_policies};
use ripple_sim::{PolicyKind, PrefetcherKind};
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    for (pf, paper_ripple, paper_ideal) in [
        (PrefetcherKind::None, 1.25, 3.36),
        (PrefetcherKind::NextLine, 2.13, 3.87),
        (PrefetcherKind::Fdip, 1.4, 3.16),
    ] {
        println!("\nFig. 7 — Speedup over LRU with {} (percent)", pf.name());
        println!(
            "  {:<16} {:>10} {:>13} {:>8} {:>8}",
            "app", "ripple-lru", "ripple-random", "best-prior", "ideal"
        );
        for &a in App::ALL.iter() {
            let c = grid.cell(a, pf);
            let best_prior = c
                .policies
                .values()
                .map(|p| p.speedup_pct)
                .fold(f64::NEG_INFINITY, f64::max);
            println!(
                "  {:<16} {:>10.2} {:>13.2} {:>8.2} {:>8.2}",
                a.name(),
                c.ripple_lru.row.speedup_pct,
                c.ripple_random.row.speedup_pct,
                best_prior,
                c.ideal.speedup_pct
            );
        }
        let mean_rl = grid.mean(pf, |c| c.ripple_lru.row.speedup_pct);
        let mean_rr = grid.mean(pf, |c| c.ripple_random.row.speedup_pct);
        let mean_ideal = grid.mean(pf, |c| c.ideal.speedup_pct);
        println!(
            "  {:<16} {:>10.2} {:>13.2} {:>8} {:>8.2}",
            "MEAN", mean_rl, mean_rr, "", mean_ideal
        );
        print_paper_check(
            &format!("fig7 mean ripple-lru speedup ({})", pf.name()),
            paper_ripple,
            mean_rl,
            "%",
        );
        print_paper_check(
            &format!("fig7 mean ideal speedup ({})", pf.name()),
            paper_ideal,
            mean_ideal,
            "%",
        );
        assert!(mean_rl <= mean_ideal, "ripple cannot beat the ideal policy");
    }
    // Headline shape: Ripple-LRU beats every prior policy's mean (within
    // measurement noise under the strongest prefetchers, where absolute
    // differences shrink to hundredths of a percent).
    for pf in [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Fdip,
    ] {
        let mean_rl = grid.mean(pf, |c| c.ripple_lru.row.speedup_pct);
        for p in prior_policies() {
            // Two explicit exclusions from the "Ripple beats every prior"
            // bar: plain Random legitimately beats LRU on thrash-heavy
            // apps (classic cyclic-pattern behaviour), and TRRIP consumes
            // the same offline profile Ripple does, making it a peer
            // technique rather than a hardware-only prior.
            if p == PolicyKind::RANDOM || p == PolicyKind::TRRIP {
                continue;
            }
            let name = p.name();
            let mean_p = grid.mean(pf, |c| c.policies[name].speedup_pct);
            assert!(
                mean_rl >= mean_p - 0.25,
                "{}: ripple-lru ({mean_rl:.2}) must beat {name} ({mean_p:.2})",
                pf.name()
            );
        }
    }
}
