//! Figure 13: cross-input generalization. A profile from input #0 is used
//! to optimize runs on inputs #1–#3; input-specific profiles gain more
//! (paper: 17 % more IPC gain with matched profiles). FDIP baseline.

use ripple::{collect_profile, Ripple, RippleConfig};
use ripple_bench::bench_budget;
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::PrefetcherKind;
use ripple_workloads::{generate, App, InputConfig};

fn main() {
    let budget = bench_budget(); // 4 inputs per app
    println!("\nFig. 13 — Ripple speedup with train-input #0 vs matched profiles (FDIP), %");
    println!(
        "  {:<16} {:>6} {:>16} {:>16}",
        "app", "input", "profile=input#0", "profile=matched"
    );
    let mut cross_sum = 0.0;
    let mut matched_sum = 0.0;
    let mut n = 0.0;
    for app in [App::FinagleHttp, App::Kafka, App::Tomcat] {
        let spec = app.spec();
        let generated = generate(&spec);
        let layout = Layout::new(&generated.program, &LayoutConfig::default());
        let mut config = RippleConfig::default();
        config.sim.prefetcher = PrefetcherKind::Fdip;
        let train = collect_profile(
            &generated,
            &layout,
            InputConfig::training(spec.seed),
            budget,
        )
        .expect("profile");
        let trained = Ripple::train(&generated.program, &layout, &train.trace, config.clone())
            .expect("train");
        for input_id in 1..=3u32 {
            let input = InputConfig::numbered(input_id, spec.seed);
            let eval = collect_profile(&generated, &layout, input, budget).expect("profile");
            let cross = trained.evaluate(&eval.trace).expect("evaluate");
            let matched_ripple =
                Ripple::train(&generated.program, &layout, &eval.trace, config.clone())
                    .expect("train");
            let matched = matched_ripple.evaluate(&eval.trace).expect("evaluate");
            println!(
                "  {:<16} {:>6} {:>16.2} {:>16.2}",
                app.name(),
                format!("#{input_id}"),
                cross.speedup_pct(),
                matched.speedup_pct()
            );
            cross_sum += cross.speedup_pct();
            matched_sum += matched.speedup_pct();
            n += 1.0;
        }
    }
    println!(
        "  MEAN cross-input {:.2}%  matched {:.2}%",
        cross_sum / n,
        matched_sum / n
    );
    // At our trace lengths the cross-input penalty sits inside the run-
    // to-run noise band (the paper's +17 % relative gain needs 100 M-
    // instruction traces); assert the aggregate within that band.
    assert!(
        matched_sum >= cross_sum - 0.3 * n,
        "matched profiles must not lose meaningfully: {:.2} vs {:.2}",
        matched_sum / n,
        cross_sum / n
    );
}
