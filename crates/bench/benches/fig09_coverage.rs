//! Figure 9: Ripple's replacement coverage per application. Paper: mean
//! above 50 %; below 50 % only for the JIT-heavy HHVM trio
//! (drupal/mediawiki/wordpress); verilator near-total (98.7 %).

use ripple_bench::{ensure_grid, print_series};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    let rows: Vec<(String, f64)> = App::ALL
        .iter()
        .map(|&a| {
            (
                a.name().to_string(),
                grid.cell(a, PrefetcherKind::Fdip).ripple_lru.coverage * 100.0,
            )
        })
        .collect();
    print_series("Fig. 9 — Ripple replacement coverage (FDIP)", "%", &rows);
    // JIT apps must trail the non-JIT mean; verilator must lead.
    let jit_mean: f64 = App::ALL
        .iter()
        .filter(|a| a.has_jit())
        .map(|&a| grid.cell(a, PrefetcherKind::Fdip).ripple_lru.coverage)
        .sum::<f64>()
        / 3.0;
    let nonjit_mean: f64 = App::ALL
        .iter()
        .filter(|a| !a.has_jit())
        .map(|&a| grid.cell(a, PrefetcherKind::Fdip).ripple_lru.coverage)
        .sum::<f64>()
        / 6.0;
    println!(
        "  jit-apps mean {:.1}% vs non-jit mean {:.1}%",
        jit_mean * 100.0,
        nonjit_mean * 100.0
    );
    assert!(
        jit_mean < nonjit_mean,
        "JIT code must cap coverage ({jit_mean:.2} !< {nonjit_mean:.2})"
    );
}
