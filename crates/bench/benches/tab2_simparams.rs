//! Table II: simulator parameters.

use ripple_sim::SimConfig;

fn main() {
    let c = SimConfig::default();
    println!("\nTable II — Simulator parameters");
    println!(
        "  L1 instruction cache   {} KiB, {}-way",
        c.l1i.size_bytes / 1024,
        c.l1i.assoc
    );
    println!(
        "  L2 unified cache       {} KiB, {}-way",
        c.l2.size_bytes / 1024,
        c.l2.assoc
    );
    println!(
        "  L3 unified cache       {} KiB, {}-way",
        c.l3.size_bytes / 1024,
        c.l3.assoc
    );
    println!("  L1 I-cache latency     {} cycles", c.l1i_latency);
    println!("  L2 cache latency       {} cycles", c.l2_latency);
    println!("  L3 cache latency       {} cycles", c.l3_latency);
    println!("  Memory latency         {} cycles", c.mem_latency);
    println!("  Base CPI               {}", c.base_cpi);
    println!("  Stall exposure         {}", c.stall_exposure);
    println!("  FTQ depth              {} blocks", c.ftq_depth);
    assert_eq!(c.l1i.size_bytes, 32 * 1024);
    assert_eq!(c.l1i.assoc, 8);
    assert_eq!(c.l2_latency, 12);
    assert_eq!(c.l3_latency, 36);
    assert_eq!(c.mem_latency, 260);
}
