//! Criterion micro-benchmarks: simulator and analysis throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ripple_bench::load_app;
use ripple_sim::{
    simulate, simulate_with_sink, PolicyKind, PrefetcherKind, SimConfig, SimSession, VecSink,
};
use ripple_workloads::App;

fn bench_simulator(c: &mut Criterion) {
    let loaded = load_app(App::Tomcat, 120_000);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for (name, cfg) in [
        ("lru_noprefetch", SimConfig::default()),
        (
            "lru_fdip",
            SimConfig::default().with_prefetcher(PrefetcherKind::Fdip),
        ),
        (
            "opt_two_pass",
            SimConfig::default().with_policy(PolicyKind::Opt),
        ),
        (
            "hawkeye",
            SimConfig::default().with_policy(PolicyKind::Hawkeye),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| simulate(&loaded.app.program, &loaded.layout, &loaded.trace, &cfg))
        });
    }
    // Replaying an ideal policy against a session's already-recorded stream
    // skips the recording pass: the delta vs `opt_two_pass` is the pass the
    // session amortizes across a policy matrix.
    let session = SimSession::new(
        &loaded.app.program,
        &loaded.layout,
        &loaded.trace,
        SimConfig::default(),
    );
    let _ = session.run(PolicyKind::Opt); // pay the recording pass up front
    group.bench_function("opt_replay_shared_recording", |b| {
        b.iter(|| session.run(PolicyKind::Opt))
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let loaded = load_app(App::Tomcat, 120_000);
    let cfg = SimConfig::default().with_policy(PolicyKind::Opt);
    let mut sink = VecSink::new();
    let _ = simulate_with_sink(
        &loaded.app.program,
        &loaded.layout,
        &loaded.trace,
        &cfg,
        &mut sink,
    );
    let log = sink.into_events();
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("eviction_analysis", |b| {
        b.iter(|| {
            ripple::analyze(
                &loaded.app.program,
                &loaded.layout,
                &loaded.trace,
                &log,
                &ripple::AnalysisConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_analysis);
criterion_main!(benches);
