//! Criterion micro-benchmarks: simulator and analysis throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ripple_bench::load_app;
use ripple_sim::{simulate, PolicyKind, PrefetcherKind, SimConfig};
use ripple_workloads::App;

fn bench_simulator(c: &mut Criterion) {
    let loaded = load_app(App::Tomcat, 120_000);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for (name, cfg) in [
        ("lru_noprefetch", SimConfig::default()),
        (
            "lru_fdip",
            SimConfig::default().with_prefetcher(PrefetcherKind::Fdip),
        ),
        (
            "opt_two_pass",
            SimConfig::default().with_policy(PolicyKind::Opt),
        ),
        (
            "hawkeye",
            SimConfig::default().with_policy(PolicyKind::Hawkeye),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| simulate(&loaded.app.program, &loaded.layout, &loaded.trace, &cfg))
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let loaded = load_app(App::Tomcat, 120_000);
    let mut cfg = SimConfig::default();
    cfg.record_evictions = true;
    cfg.policy = PolicyKind::Opt;
    let run = simulate(&loaded.app.program, &loaded.layout, &loaded.trace, &cfg);
    let log = run.evictions.unwrap();
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("eviction_analysis", |b| {
        b.iter(|| {
            ripple::analyze(
                &loaded.app.program,
                &loaded.layout,
                &loaded.trace,
                &log,
                &ripple::AnalysisConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_analysis);
criterion_main!(benches);
