//! Criterion micro-benchmarks: simulator and analysis throughput, plus
//! the interned-vs-reference line-path comparison persisted to
//! `BENCH_perf.json` at the repository root.
//!
//! The line-path scenarios measure simulated blocks per second for the
//! frontend's hot loops under both [`LinePath`] implementations:
//!
//! * `record_pass` — the shared recording pass (LRU frontend capturing
//!   the request stream and building its future index);
//! * `replay_pass` — a Demand-MIN replay against an already-recorded
//!   session;
//! * `online_lru` — a full single-pass online-LRU run;
//! * `full_pipeline_record_plus_demand_min` — a fresh two-pass oracle run
//!   (recording plus Demand-MIN replay), the headline number.
//!
//! `RIPPLE_BENCH_INSTRS` overrides the per-app instruction budget.
//!
//! The `replay_pass` scenario is additionally measured at 1 and 4 replay
//! shards (`replay_shards` in the JSON): the set-batched replay engine
//! partitioning L1I sets across threads, byte-identical results at every
//! shard count.
//!
//! A full Ripple pipeline (train + evaluate) also runs once under a
//! [`MetricsRecorder`], and its phase timers land in `BENCH_perf.json` as
//! a `pipeline_phases` breakdown — each phase's share of the measured
//! root wall clock (phases nest, so shares are computed against the
//! single wall time, not the summed phase time).

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ripple::{Ripple, RippleConfig};
use ripple_bench::{bench_budget, load_app, LoadedApp};
use ripple_json::{object, Value};
use ripple_obs::MetricsRecorder;
use ripple_sim::{
    simulate, simulate_with_sink, LinePath, PolicyKind, PolicyRegistry, PrefetcherKind, SimConfig,
    SimSession, VecSink,
};
use ripple_workloads::App;

fn bench_simulator(c: &mut Criterion) {
    let loaded = load_app(App::Tomcat, 120_000);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    // One no-prefetch scenario per registered *online* policy, so a newly
    // registered policy gets a throughput number without touching this
    // bench. Offline ideals are excluded from this loop — they need a
    // recorded future index and run two passes — and are covered by the
    // `opt_two_pass` / `opt_replay_shared_recording` scenarios below.
    let mut scenarios: Vec<(String, SimConfig)> = Vec::new();
    for id in PolicyRegistry::global().online() {
        scenarios.push((
            format!("{}_noprefetch", id.name()),
            SimConfig::default().with_policy(id),
        ));
    }
    for id in PolicyRegistry::global().offline() {
        println!(
            "  (skipping {}_noprefetch: offline ideal needs a recorded future index; \
             see opt_two_pass / opt_replay_shared_recording)",
            id.name()
        );
    }
    scenarios.push((
        "lru_fdip".to_string(),
        SimConfig::default().with_prefetcher(PrefetcherKind::Fdip),
    ));
    scenarios.push((
        "opt_two_pass".to_string(),
        SimConfig::default().with_policy(PolicyKind::OPT),
    ));
    for (name, cfg) in &scenarios {
        group.bench_function(name.as_str(), |b| {
            b.iter(|| simulate(&loaded.app.program, &loaded.layout, &loaded.trace, cfg))
        });
    }
    // Replaying an ideal policy against a session's already-recorded stream
    // skips the recording pass: the delta vs `opt_two_pass` is the pass the
    // session amortizes across a policy matrix.
    let session = SimSession::new(
        &loaded.app.program,
        &loaded.layout,
        &loaded.trace,
        SimConfig::default(),
    );
    let _ = session.run(PolicyKind::OPT); // pay the recording pass up front
    group.bench_function("opt_replay_shared_recording", |b| {
        b.iter(|| session.run(PolicyKind::OPT))
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let loaded = load_app(App::Tomcat, 120_000);
    let cfg = SimConfig::default().with_policy(PolicyKind::OPT);
    let mut sink = VecSink::new();
    let _ = simulate_with_sink(
        &loaded.app.program,
        &loaded.layout,
        &loaded.trace,
        &cfg,
        &mut sink,
    );
    let log = sink.into_events();
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("eviction_analysis", |b| {
        b.iter(|| {
            ripple::analyze(
                &loaded.app.program,
                &loaded.layout,
                &loaded.trace,
                &log,
                &ripple::AnalysisConfig::default(),
            )
        })
    });
    group.finish();
}

/// Timed samples per line-path scenario (one untimed warmup first).
const SAMPLES: u32 = 10;

/// Mean wall-clock seconds per invocation of `f`.
fn secs_per_run(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..SAMPLES {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(SAMPLES)
}

/// Simulated blocks per second of one scenario under one line path.
fn blocks_per_sec(trace_blocks: u64, secs: f64) -> f64 {
    trace_blocks as f64 / secs
}

fn scenario_configs(path: LinePath) -> (SimConfig, SimConfig) {
    // The oracle scenarios run under NLP so the request stream contains
    // prefetches and Demand-MIN differs from OPT; the online scenario is
    // the paper's plain LRU baseline.
    let oracle = SimConfig::default()
        .with_prefetcher(PrefetcherKind::NextLine)
        .with_line_path(path);
    let online = SimConfig::default().with_line_path(path);
    (oracle, online)
}

fn measure_path(loaded: &LoadedApp, path: LinePath) -> [(&'static str, f64); 4] {
    let blocks = loaded.trace.len() as u64;
    let (oracle_cfg, online_cfg) = scenario_configs(path);

    let record = secs_per_run(|| {
        let session = SimSession::new(
            &loaded.app.program,
            &loaded.layout,
            &loaded.trace,
            oracle_cfg.clone(),
        );
        session.ensure_recorded();
        black_box(session.recording_passes());
    });

    let warm = SimSession::new(
        &loaded.app.program,
        &loaded.layout,
        &loaded.trace,
        oracle_cfg.clone(),
    );
    warm.ensure_recorded();
    let replay = secs_per_run(|| {
        black_box(warm.run(PolicyKind::DEMAND_MIN));
    });

    let online = secs_per_run(|| {
        black_box(simulate(
            &loaded.app.program,
            &loaded.layout,
            &loaded.trace,
            &online_cfg,
        ));
    });

    let full = secs_per_run(|| {
        let session = SimSession::new(
            &loaded.app.program,
            &loaded.layout,
            &loaded.trace,
            oracle_cfg.clone(),
        );
        black_box(session.run(PolicyKind::DEMAND_MIN));
    });

    [
        ("record_pass", blocks_per_sec(blocks, record)),
        ("replay_pass", blocks_per_sec(blocks, replay)),
        ("online_lru", blocks_per_sec(blocks, online)),
        (
            "full_pipeline_record_plus_demand_min",
            blocks_per_sec(blocks, full),
        ),
    ]
}

fn bench_line_paths(_c: &mut Criterion) {
    let budget = bench_budget();
    let loaded = load_app(App::Tomcat, budget);
    println!("group: line_paths (Tomcat, {budget} instrs)");

    let interned = measure_path(&loaded, LinePath::Interned);
    let reference = measure_path(&loaded, LinePath::Reference);

    let mut scenarios: Vec<(String, Value)> = Vec::new();
    for (&(name, fast), &(_, slow)) in interned.iter().zip(reference.iter()) {
        let speedup = fast / slow;
        println!(
            "  {name}: interned {fast:.0} blocks/s, reference {slow:.0} blocks/s ({speedup:.2}x)"
        );
        scenarios.push((
            name.to_string(),
            object([
                ("interned_blocks_per_sec", Value::Float(fast)),
                ("reference_blocks_per_sec", Value::Float(slow)),
                ("speedup", Value::Float(speedup)),
            ]),
        ));
    }

    let doc = object([
        ("app", Value::Str(App::Tomcat.name().to_string())),
        ("budget_instrs", Value::UInt(budget)),
        ("trace_blocks", Value::UInt(loaded.trace.len() as u64)),
        ("samples_per_scenario", Value::UInt(u64::from(SAMPLES))),
        ("scenarios", Value::Object(scenarios)),
        ("replay_shards", measure_sharded_replay(&loaded)),
        ("phase_throughput", phase_throughput(&loaded)),
        ("pipeline_phases", pipeline_phase_breakdown(&loaded)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    match std::fs::write(path, doc.to_pretty_string() + "\n") {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}

/// The `replay_pass` scenario (Demand-MIN against an already-recorded
/// interned session) at 1 and 4 replay shards: the same set-batched
/// replay engine, single-threaded vs partitioning the L1I sets across
/// four threads. Results are byte-identical at every shard count; only
/// wall clock moves. `available_parallelism` is persisted alongside the
/// curve: on a machine with fewer than 4 cores the 4-shard number
/// measures oversubscription, not scaling.
fn measure_sharded_replay(loaded: &LoadedApp) -> Value {
    let blocks = loaded.trace.len() as u64;
    let (oracle_cfg, _) = scenario_configs(LinePath::Interned);
    let cores = std::thread::available_parallelism().map_or(0, usize::from) as u64;
    println!("group: replay_shards (Demand-MIN replay, interned path, {cores} cores)");
    let mut per_shard: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 4] {
        let warm = SimSession::new(
            &loaded.app.program,
            &loaded.layout,
            &loaded.trace,
            oracle_cfg.clone().with_replay_shards(shards),
        );
        warm.ensure_recorded();
        let secs = secs_per_run(|| {
            black_box(warm.run(PolicyKind::DEMAND_MIN));
        });
        let bps = blocks_per_sec(blocks, secs);
        println!("  shards={shards}: {bps:.0} blocks/s");
        per_shard.push((shards, bps));
    }
    let speedup = per_shard[1].1 / per_shard[0].1;
    println!("  4-shard speedup over 1 shard: {speedup:.2}x");
    object([
        ("available_parallelism", Value::UInt(cores)),
        ("shards_1_blocks_per_sec", Value::Float(per_shard[0].1)),
        ("shards_4_blocks_per_sec", Value::Float(per_shard[1].1)),
        ("speedup_4_over_1", Value::Float(speedup)),
    ])
}

/// Blocks/sec through the two historically dominant pipeline phases,
/// measured directly rather than inferred from the share breakdown:
///
/// * `cue_selection` — the dense [`ripple::analyze_windows`] over the real
///   oracle window set of the training trace;
/// * `final_layout` — the evaluate fixpoint (incremental relink + columnar
///   oracle replay + dense window analysis + operand patch), taken from
///   the `eval.final_layout` phase timer over repeated evaluates.
fn phase_throughput(loaded: &LoadedApp) -> Value {
    let blocks = loaded.trace.len() as u64;

    // cue_selection: a direct analyze_windows loop on real windows.
    let oracle_cfg = SimConfig::default()
        .with_prefetcher(PrefetcherKind::NextLine)
        .with_policy(PolicyKind::OPT);
    let mut sink = ripple::WindowSink::new();
    let _ = simulate_with_sink(
        &loaded.app.program,
        &loaded.layout,
        &loaded.trace,
        &oracle_cfg,
        &mut sink,
    );
    let windows = sink.into_windows();
    let cue_secs = secs_per_run(|| {
        black_box(ripple::analyze_windows(
            &loaded.app.program,
            &loaded.layout,
            &loaded.trace,
            windows.clone(),
            &ripple::AnalysisConfig::default(),
        ));
    });

    // final_layout: the phase timer's delta over SAMPLES evaluates.
    let recorder = Arc::new(MetricsRecorder::new());
    let mut config = RippleConfig::default();
    config.threads = Some(1);
    let ripple = Ripple::train_with_recorder(
        &loaded.app.program,
        &loaded.layout,
        &loaded.trace,
        config,
        recorder.clone(),
    )
    .expect("train");
    black_box(ripple.evaluate(&loaded.trace).expect("evaluate")); // warmup
    let before = recorder
        .snapshot()
        .phase("eval.final_layout")
        .map_or(0, |s| s.total_nanos);
    for _ in 0..SAMPLES {
        black_box(ripple.evaluate(&loaded.trace).expect("evaluate"));
    }
    let after = recorder
        .snapshot()
        .phase("eval.final_layout")
        .map_or(0, |s| s.total_nanos);
    let final_layout_secs = (after - before) as f64 / 1e9 / f64::from(SAMPLES);

    println!("group: phase_throughput (Tomcat, 1 thread)");
    let mut out: Vec<(String, Value)> = Vec::new();
    for (name, secs) in [
        ("cue_selection", cue_secs),
        ("final_layout", final_layout_secs),
    ] {
        let bps = blocks_per_sec(blocks, secs);
        println!("  {name}: {:.2}ms per run, {bps:.0} blocks/s", secs * 1e3);
        out.push((
            name.to_string(),
            object([
                ("secs_per_run", Value::Float(secs)),
                ("blocks_per_sec", Value::Float(bps)),
            ]),
        ));
    }
    Value::Object(out)
}

/// One instrumented train + evaluate run: the observability layer's phase
/// timers, rendered as `{wall_ns, phases: name -> {count, total_ns,
/// max_ns, share_pct}}`. `share_pct` is each phase's slice of the
/// *measured root wall time* of the run, not of the summed phase time:
/// phases nest (`harness.batch` ⊃ `harness.job`, `eval.sim_runs` ⊃
/// `session.run`), so a phase-total denominator double-counts every
/// nested level and inflates the root slices. Against the single wall
/// clock, disjoint top-level phases sum to ≤ 100% and nested phases read
/// as genuine fractions of the run.
fn pipeline_phase_breakdown(loaded: &LoadedApp) -> Value {
    let recorder = Arc::new(MetricsRecorder::new());
    let mut config = RippleConfig::default();
    config.threads = Some(1); // deterministic single-thread timing profile
    let wall = Instant::now();
    let ripple = Ripple::train_with_recorder(
        &loaded.app.program,
        &loaded.layout,
        &loaded.trace,
        config,
        recorder.clone(),
    )
    .expect("train");
    black_box(ripple.evaluate(&loaded.trace).expect("evaluate"));
    let wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let snapshot = recorder.snapshot();
    println!("group: pipeline_phases (train + evaluate, 1 thread)");
    let mut phases: Vec<(String, Value)> = Vec::new();
    for (name, stat) in &snapshot.phases {
        let share = if wall_ns == 0 {
            0.0
        } else {
            100.0 * stat.total_nanos as f64 / wall_ns as f64
        };
        println!(
            "  {name}: {:.2}ms over {} laps ({share:.1}% of wall clock)",
            stat.total_nanos as f64 / 1e6,
            stat.count
        );
        phases.push((
            name.clone(),
            object([
                ("count", Value::UInt(stat.count)),
                ("total_ns", Value::UInt(stat.total_nanos)),
                ("max_ns", Value::UInt(stat.max_nanos)),
                ("share_pct", Value::Float(share)),
            ]),
        ));
    }
    object([
        ("wall_ns", Value::UInt(wall_ns)),
        ("phases", Value::Object(phases)),
    ])
}

criterion_group!(benches, bench_simulator, bench_analysis, bench_line_paths);
criterion_main!(benches);
