//! Figure 3: prior replacement policies vs LRU under FDIP. Paper: none of
//! GHRP/Hawkeye/Harmony/SRRIP/DRRIP beat LRU, while the ideal policy
//! gains 3.16 % on average.
//!
//! The policy columns come from [`prior_policies`] (the registry's online
//! policies minus the LRU baseline), so a newly registered policy gets a
//! column without touching this bench.

use ripple_bench::{ensure_grid, print_paper_check, prior_policies};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    let priors = prior_policies();
    println!("\nFig. 3 — Replacement-policy speedup over LRU (FDIP at L1I), %");
    let mut header = format!("  {:<16}", "app");
    for p in &priors {
        header.push_str(&format!(" {:>9}", p.name()));
    }
    header.push_str(&format!(" {:>9}", "ideal"));
    println!("{header}");
    let mut sums = vec![0.0f64; priors.len() + 1];
    for &a in App::ALL.iter() {
        let c = grid.cell(a, PrefetcherKind::Fdip);
        let mut row = format!("  {:<16}", a.name());
        let mut vals: Vec<f64> = priors
            .iter()
            .map(|p| c.policies[p.name()].speedup_pct)
            .collect();
        vals.push(c.ideal.speedup_pct);
        for (s, v) in sums.iter_mut().zip(&vals) {
            *s += v;
            row.push_str(&format!(" {v:>9.2}"));
        }
        println!("{row}");
    }
    let n = App::ALL.len() as f64;
    let mut mean_row = format!("  {:<16}", "MEAN");
    for s in &sums {
        mean_row.push_str(&format!(" {:>9.2}", s / n));
    }
    println!("{mean_row}");
    let ideal_mean = sums.last().expect("ideal column") / n;
    print_paper_check("fig3 mean ideal speedup under fdip", 3.16, ideal_mean, "%");
    // The paper's headline: no prior policy meaningfully beats LRU while
    // ideal clearly does.
    for (p, s) in priors.iter().zip(&sums) {
        let mean = s / n;
        assert!(
            mean < ideal_mean,
            "{} mean {mean:.2}% must trail the ideal {ideal_mean:.2}%",
            p.name()
        );
    }
}
