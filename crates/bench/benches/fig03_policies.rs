//! Figure 3: prior replacement policies vs LRU under FDIP. Paper: none of
//! GHRP/Hawkeye/Harmony/SRRIP/DRRIP beat LRU, while the ideal policy
//! gains 3.16 % on average.
//!
//! Thin wrapper over the declarative `fig03-policies` experiment
//! (`experiments/fig03-policies.json`): the measurement itself is data
//! executed by ripple-lab; this binary only prints the paper's table and
//! asserts its headline shape. The policy columns come from the
//! declaration's `@priors` token (the registry's online policies minus
//! the LRU baseline), so a newly registered policy still gets a column
//! without touching this bench.

use ripple_bench::{bench_budget, bench_profile, print_paper_check};
use ripple_lab::{builtin, run_experiment, LabOptions};
use ripple_sim::PrefetcherKind;

fn main() {
    let mut decl = builtin("fig03-policies").expect("embedded declaration");
    decl.profiles = vec![bench_profile().name.to_string()];
    let resolved = decl.resolve().expect("declaration resolves");
    let options = LabOptions {
        instructions: Some(bench_budget()),
        ..LabOptions::default()
    };
    let run = run_experiment(&resolved, &options).expect("lab run");

    let policy_names: Vec<&str> = resolved.policies.iter().map(|p| p.name()).collect();
    println!("\nFig. 3 — Replacement-policy speedup over LRU (FDIP at L1I), %");
    let mut header = format!("  {:<16}", "app");
    for name in &policy_names {
        header.push_str(&format!(" {name:>9}"));
    }
    header.push_str(&format!(" {:>9}", "ideal"));
    println!("{header}");
    let mut sums = vec![0.0f64; policy_names.len() + 1];
    for &a in &resolved.apps {
        let c = run
            .outcome(bench_profile().name, a.name(), PrefetcherKind::Fdip)
            .expect("grid covers every app");
        let mut row = format!("  {:<16}", a.name());
        let mut vals: Vec<f64> = c.policies.iter().map(|(_, r)| r.speedup_pct).collect();
        vals.push(c.ideal.speedup_pct);
        for (s, v) in sums.iter_mut().zip(&vals) {
            *s += v;
            row.push_str(&format!(" {v:>9.2}"));
        }
        println!("{row}");
    }
    let n = resolved.apps.len() as f64;
    let mut mean_row = format!("  {:<16}", "MEAN");
    for s in &sums {
        mean_row.push_str(&format!(" {:>9.2}", s / n));
    }
    println!("{mean_row}");
    let ideal_mean = sums.last().expect("ideal column") / n;
    print_paper_check("fig3 mean ideal speedup under fdip", 3.16, ideal_mean, "%");
    // The paper's headline: no prior policy meaningfully beats LRU while
    // ideal clearly does.
    for (name, s) in policy_names.iter().zip(&sums) {
        let mean = s / n;
        assert!(
            mean < ideal_mean,
            "{name} mean {mean:.2}% must trail the ideal {ideal_mean:.2}%"
        );
    }
}
