//! Figure 3: prior replacement policies vs LRU under FDIP. Paper: none of
//! GHRP/Hawkeye/Harmony/SRRIP/DRRIP beat LRU, while the ideal policy
//! gains 3.16 % on average.

use ripple_bench::{ensure_grid, print_paper_check};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    println!("\nFig. 3 — Replacement-policy speedup over LRU (FDIP at L1I), %");
    println!(
        "  {:<16} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app", "random", "srrip", "drrip", "ghrp", "hawkeye", "harmony", "ideal"
    );
    let mut sums = [0.0f64; 7];
    for &a in App::ALL.iter() {
        let c = grid.cell(a, PrefetcherKind::Fdip);
        let vals = [
            c.policies["random"].speedup_pct,
            c.policies["srrip"].speedup_pct,
            c.policies["drrip"].speedup_pct,
            c.policies["ghrp"].speedup_pct,
            c.policies["hawkeye"].speedup_pct,
            c.policies["harmony"].speedup_pct,
            c.ideal.speedup_pct,
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        println!(
            "  {:<16} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            a.name(),
            vals[0],
            vals[1],
            vals[2],
            vals[3],
            vals[4],
            vals[5],
            vals[6]
        );
    }
    let n = App::ALL.len() as f64;
    println!(
        "  {:<16} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
        "MEAN",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n,
        sums[5] / n,
        sums[6] / n
    );
    print_paper_check("fig3 mean ideal speedup under fdip", 3.16, sums[6] / n, "%");
    // The paper's headline: no prior policy meaningfully beats LRU while
    // ideal clearly does.
    let ideal_mean = sums[6] / n;
    for (i, name) in ["random", "srrip", "drrip", "ghrp", "hawkeye", "harmony"]
        .iter()
        .enumerate()
    {
        let mean = sums[i] / n;
        assert!(
            mean < ideal_mean,
            "{name} mean {mean:.2}% must trail the ideal {ideal_mean:.2}%"
        );
    }
}
