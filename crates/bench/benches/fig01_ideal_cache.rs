//! Figure 1: ideal I-cache speedup over an LRU baseline without
//! prefetching. Paper: 11–47 % per app, mean 17.7 %.

use ripple_bench::{ensure_grid, print_paper_check, print_series};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    let rows: Vec<(String, f64)> = App::ALL
        .iter()
        .map(|&a| {
            let c = grid.cell(a, PrefetcherKind::None);
            (a.name().to_string(), c.ideal_cache.speedup_pct)
        })
        .collect();
    print_series(
        "Fig. 1 — Ideal I-cache speedup over LRU (no prefetching)",
        "%",
        &rows,
    );
    let mean = grid.mean(PrefetcherKind::None, |c| c.ideal_cache.speedup_pct);
    print_paper_check("fig1 mean ideal-cache speedup", 17.7, mean, "%");
    assert!(
        rows.iter().all(|r| r.1 > 0.0),
        "ideal cache must always win"
    );
}
