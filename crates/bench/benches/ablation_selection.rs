//! Ablation (DESIGN.md §4): cue-selection strategy. LatestEligible times
//! the invalidation near the eviction; HighestProbability is the paper's
//! Fig. 5b argmax.

use ripple::{CueSelection, Ripple, RippleConfig};
use ripple_bench::{bench_budget, load_app};
use ripple_workloads::App;

fn main() {
    let budget = bench_budget() / 2;
    println!("\nAblation — cue selection (no-prefetch)");
    println!(
        "  {:<16} {:>22} {:>22}",
        "app", "highest-probability", "latest-eligible"
    );
    for app in [App::Cassandra, App::FinagleHttp] {
        let loaded = load_app(app, budget);
        let mut out = Vec::new();
        for sel in [
            CueSelection::HighestProbability,
            CueSelection::LatestEligible,
        ] {
            let mut config = RippleConfig::default();
            config.analysis.cue_selection = sel;
            let ripple = Ripple::train(&loaded.app.program, &loaded.layout, &loaded.trace, config)
                .expect("train");
            let o = ripple.evaluate(&loaded.trace).expect("evaluate");
            out.push(format!(
                "{:+.2}% ({:.0}% cov)",
                o.speedup_pct(),
                o.coverage.coverage() * 100.0
            ));
        }
        println!("  {:<16} {:>22} {:>22}", app.name(), out[0], out[1]);
    }
}
