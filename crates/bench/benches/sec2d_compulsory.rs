//! §II-D: compulsory MPKI is tiny (paper: 0.1–0.3, mean 0.16), which is
//! why scan-oriented policies (SRRIP/DRRIP) have nothing to exploit on
//! the I-cache.

use ripple_bench::{ensure_grid, print_paper_check, print_series};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    let rows: Vec<(String, f64)> = App::ALL
        .iter()
        .map(|&a| {
            (
                a.name().to_string(),
                grid.cell(a, PrefetcherKind::None).compulsory_mpki,
            )
        })
        .collect();
    print_series("§II-D — Compulsory MPKI (steady state)", "MPKI", &rows);
    let mean = grid.mean(PrefetcherKind::None, |c| c.compulsory_mpki);
    print_paper_check("sec2d mean compulsory mpki", 0.16, mean, "");
    let total_mean = grid.mean(PrefetcherKind::None, |c| c.lru.mpki);
    // Our traces are ~1 M instructions vs the paper's 100 M, so first
    // touches weigh ~10x more here even after cache warmup; the qualitative
    // point (compulsory misses are a minority, i.e. scanning patterns are
    // rare) still holds.
    assert!(
        mean < 0.5 * total_mean,
        "compulsory misses must be a minority of total MPKI ({mean:.2} vs {total_mean:.2})"
    );
}
