//! §II-C Observations 1 & 2: where Demand-MIN's gain over LRU comes from
//! under FDIP. Observation 1 (paper: 1.35 % of 3.16 %): early eviction of
//! inaccurate prefetches — measured here via prefetch-pollution evictions.
//! Observation 2 (paper: 1.81 %): retaining hard-to-prefetch lines —
//! the remainder of the Demand-MIN gain.

use ripple::{effective_threads, policy_matrix};
use ripple_bench::{bench_budget, load_app, print_paper_check};
use ripple_sim::{PolicyKind, PrefetcherKind, SimConfig, SimSession};
use ripple_workloads::App;

fn main() {
    let budget = bench_budget() / 2;
    println!("\n§II-C — Demand-MIN vs OPT vs LRU under FDIP");
    println!(
        "  {:<16} {:>9} {:>9} {:>9} {:>14} {:>14}",
        "app", "lru-miss", "opt-miss", "dm-miss", "dm-speedup%", "opt-speedup%"
    );
    let mut dm_sum = 0.0;
    let mut opt_sum = 0.0;
    for app in App::ALL {
        let loaded = load_app(app, budget);
        let cfg = SimConfig::default().with_prefetcher(PrefetcherKind::Fdip);
        // One session: OPT and Demand-MIN replay the same recorded stream.
        let session = SimSession::new(&loaded.app.program, &loaded.layout, &loaded.trace, cfg);
        let results = policy_matrix(
            &session,
            &[PolicyKind::LRU, PolicyKind::OPT, PolicyKind::DEMAND_MIN],
            effective_threads(None),
        )
        .expect("policy matrix");
        let (lru, opt, dm) = (&results[0], &results[1], &results[2]);
        let dm_sp = dm.speedup_pct_over(lru);
        let opt_sp = opt.speedup_pct_over(lru);
        dm_sum += dm_sp;
        opt_sum += opt_sp;
        println!(
            "  {:<16} {:>9} {:>9} {:>9} {:>14.2} {:>14.2}",
            app.name(),
            lru.demand_misses,
            opt.demand_misses,
            dm.demand_misses,
            dm_sp,
            opt_sp
        );
        assert!(
            dm.demand_misses <= opt.demand_misses,
            "{app}: demand-min must not lose to opt under prefetching"
        );
    }
    let n = App::ALL.len() as f64;
    // OPT's gain ~ keeping hard-to-prefetch lines (Obs. 2); Demand-MIN's
    // extra gain over OPT ~ early eviction of prefetched lines (Obs. 1).
    println!(
        "  split: obs2(OPT-over-LRU) {:.2}% + obs1(DM-over-OPT) {:.2}% = {:.2}%",
        opt_sum / n,
        dm_sum / n - opt_sum / n,
        dm_sum / n
    );
    print_paper_check("obs total demand-min speedup (fdip)", 3.16, dm_sum / n, "%");
}
