//! Figure 11: static instruction overhead of injected invalidations.
//! Paper: below 4.4 % for every application (mean 3.4 %).

use ripple_bench::{ensure_grid, print_paper_check, print_series};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    let rows: Vec<(String, f64)> = App::ALL
        .iter()
        .map(|&a| {
            (
                a.name().to_string(),
                grid.cell(a, PrefetcherKind::Fdip)
                    .ripple_lru
                    .static_overhead_pct,
            )
        })
        .collect();
    print_series("Fig. 11 — Static instruction overhead", "%", &rows);
    let mean = grid.mean(PrefetcherKind::Fdip, |c| c.ripple_lru.static_overhead_pct);
    print_paper_check("fig11 mean static overhead", 3.4, mean, "%");
    assert!(
        rows.iter().all(|r| r.1 < 4.4),
        "static overhead must stay below the paper's 4.4% bound"
    );
}
