//! Figure 8: L1I miss reduction over LRU. Paper means: Ripple-LRU 9.57 %
//! (none), 28.6 % (NLP), 18.61 % (FDIP); ideal 28.88/53.66/45 %.

use ripple_bench::{ensure_grid, print_paper_check};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    for (pf, paper_ripple, paper_ideal) in [
        (PrefetcherKind::None, 9.57, 28.88),
        (PrefetcherKind::NextLine, 28.6, 53.66),
        (PrefetcherKind::Fdip, 18.61, 45.0),
    ] {
        println!(
            "\nFig. 8 — L1I miss reduction over LRU with {} (percent)",
            pf.name()
        );
        println!(
            "  {:<16} {:>10} {:>13} {:>8}",
            "app", "ripple-lru", "ripple-random", "ideal"
        );
        for &a in App::ALL.iter() {
            let c = grid.cell(a, pf);
            println!(
                "  {:<16} {:>10.2} {:>13.2} {:>8.2}",
                a.name(),
                c.ripple_lru.row.miss_reduction_pct,
                c.ripple_random.row.miss_reduction_pct,
                c.ideal.miss_reduction_pct
            );
        }
        let mean_rl = grid.mean(pf, |c| c.ripple_lru.row.miss_reduction_pct);
        let mean_ideal = grid.mean(pf, |c| c.ideal.miss_reduction_pct);
        println!(
            "  {:<16} {:>10.2} {:>13} {:>8.2}",
            "MEAN", mean_rl, "", mean_ideal
        );
        print_paper_check(
            &format!("fig8 mean ripple-lru miss reduction ({})", pf.name()),
            paper_ripple,
            mean_rl,
            "%",
        );
        print_paper_check(
            &format!("fig8 mean ideal miss reduction ({})", pf.name()),
            paper_ideal,
            mean_ideal,
            "%",
        );
        assert!(mean_ideal > 0.0, "ideal must reduce misses");
        assert!(
            mean_rl <= mean_ideal + 1e-9,
            "ripple cannot reduce more than ideal"
        );
    }
}
