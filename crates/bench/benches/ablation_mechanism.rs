//! Ablation (§IV "Invalidation vs. reducing LRU priority"): the demote
//! mechanism vs outright invalidation vs no-op (bloat only). Paper:
//! demote nudges Ripple-LRU from 1.6 % to 1.7 % mean speedup.

use ripple::{Ripple, RippleConfig};
use ripple_bench::{bench_budget, load_app};
use ripple_sim::{EvictionMechanism, PrefetcherKind};
use ripple_workloads::App;

fn main() {
    let budget = bench_budget() / 2;
    println!("\nAblation — eviction mechanism (no-prefetch, % speedup over LRU)");
    println!(
        "  {:<16} {:>12} {:>9} {:>11}",
        "app", "invalidate", "demote", "noop-bloat"
    );
    for app in [App::Cassandra, App::Kafka, App::Verilator] {
        let loaded = load_app(app, budget);
        let mut speeds = Vec::new();
        for mech in [
            EvictionMechanism::Invalidate,
            EvictionMechanism::Demote,
            EvictionMechanism::NoOp,
        ] {
            let mut config = RippleConfig::default();
            config.sim.prefetcher = PrefetcherKind::None;
            config.mechanism = mech;
            let ripple = Ripple::train(&loaded.app.program, &loaded.layout, &loaded.trace, config)
                .expect("train");
            speeds.push(
                ripple
                    .evaluate(&loaded.trace)
                    .expect("evaluate")
                    .speedup_pct(),
            );
        }
        println!(
            "  {:<16} {:>12.2} {:>9.2} {:>11.2}",
            app.name(),
            speeds[0],
            speeds[1],
            speeds[2]
        );
        assert!(
            speeds[0] > speeds[2] && speeds[1] > speeds[2],
            "{app}: a real mechanism must beat bloat-only"
        );
    }
}
