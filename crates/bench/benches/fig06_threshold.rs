//! Figure 6: coverage/accuracy trade-off vs invalidation threshold for
//! finagle-http. Paper: coverage falls and accuracy rises with the
//! threshold; the sweet spot sits at 40–60 %.

use ripple::{sweep, Ripple, RippleConfig};
use ripple_bench::{bench_budget, load_app};
use ripple_workloads::App;

fn main() {
    let loaded = load_app(App::FinagleHttp, bench_budget());
    let config = RippleConfig::default();
    let ripple =
        Ripple::train(&loaded.app.program, &loaded.layout, &loaded.trace, config).expect("train");
    let thresholds: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let points = sweep(&ripple, &loaded.trace, &thresholds).expect("sweep");
    println!("\nFig. 6 — Coverage/accuracy vs invalidation threshold (finagle-http)");
    println!(
        "  {:>9} {:>10} {:>10} {:>10}",
        "threshold", "coverage%", "accuracy%", "speedup%"
    );
    for p in &points {
        println!(
            "  {:>9.2} {:>10.1} {:>10.1} {:>10.2}",
            p.threshold,
            p.coverage * 100.0,
            p.accuracy * 100.0,
            p.speedup_pct
        );
    }
    // The paper's trade-off shape, asserted as a trend (slot fitting and
    // relinking make individual points slightly non-monotone): coverage
    // falls and accuracy rises from the low-threshold to the
    // high-threshold end of the curve.
    let low =
        |f: &dyn Fn(&ripple::ThresholdPoint) -> f64| points[..4].iter().map(f).sum::<f64>() / 4.0;
    let high = |f: &dyn Fn(&ripple::ThresholdPoint) -> f64| {
        points[points.len() - 4..].iter().map(f).sum::<f64>() / 4.0
    };
    assert!(
        low(&|p| p.coverage) > high(&|p| p.coverage),
        "coverage must fall with threshold"
    );
    assert!(
        high(&|p| p.accuracy) > low(&|p| p.accuracy),
        "accuracy must rise with threshold"
    );
}
