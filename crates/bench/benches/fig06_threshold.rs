//! Figure 6: coverage/accuracy trade-off vs invalidation threshold for
//! finagle-http. Paper: coverage falls and accuracy rises with the
//! threshold; the sweet spot sits at 40–60 %.
//!
//! Thin wrapper over the declarative `fig06-threshold` experiment
//! (`experiments/fig06-threshold.json`): one grid point, eleven Ripple
//! rows — the whole sweep is data.

use ripple_bench::{bench_budget, bench_profile};
use ripple_lab::{builtin, run_experiment, LabOptions, RipplePointRow};

fn main() {
    let mut decl = builtin("fig06-threshold").expect("embedded declaration");
    decl.profiles = vec![bench_profile().name.to_string()];
    let resolved = decl.resolve().expect("declaration resolves");
    let options = LabOptions {
        instructions: Some(bench_budget()),
        ..LabOptions::default()
    };
    let run = run_experiment(&resolved, &options).expect("lab run");
    let points = &run.outcomes[0].ripple;
    assert_eq!(points.len(), resolved.thresholds.len());

    println!("\nFig. 6 — Coverage/accuracy vs invalidation threshold (finagle-http)");
    println!(
        "  {:>9} {:>10} {:>10} {:>10}",
        "threshold", "coverage%", "accuracy%", "speedup%"
    );
    for p in points {
        println!(
            "  {:>9.2} {:>10.1} {:>10.1} {:>10.2}",
            p.threshold,
            p.coverage * 100.0,
            p.accuracy * 100.0,
            p.row.speedup_pct
        );
    }
    // The paper's trade-off shape, asserted as a trend (slot fitting and
    // relinking make individual points slightly non-monotone): coverage
    // falls and accuracy rises from the low-threshold to the
    // high-threshold end of the curve.
    let low = |f: &dyn Fn(&RipplePointRow) -> f64| points[..4].iter().map(f).sum::<f64>() / 4.0;
    let high = |f: &dyn Fn(&RipplePointRow) -> f64| {
        points[points.len() - 4..].iter().map(f).sum::<f64>() / 4.0
    };
    assert!(
        low(&|p| p.coverage) > high(&|p| p.coverage),
        "coverage must fall with threshold"
    );
    assert!(
        high(&|p| p.accuracy) > low(&|p| p.accuracy),
        "accuracy must rise with threshold"
    );
}
