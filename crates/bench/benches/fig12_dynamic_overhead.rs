//! Figure 12: dynamic instruction overhead of executed invalidations.
//! Paper: mean 2.2 %, below 2 % everywhere except verilator (~10 %,
//! where near-total coverage costs extra executed invalidations).

use ripple_bench::{ensure_grid, print_paper_check, print_series};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    let rows: Vec<(String, f64)> = App::ALL
        .iter()
        .map(|&a| {
            (
                a.name().to_string(),
                grid.cell(a, PrefetcherKind::Fdip)
                    .ripple_lru
                    .dynamic_overhead_pct,
            )
        })
        .collect();
    print_series("Fig. 12 — Dynamic instruction overhead", "%", &rows);
    let mean = grid.mean(PrefetcherKind::Fdip, |c| c.ripple_lru.dynamic_overhead_pct);
    print_paper_check("fig12 mean dynamic overhead", 2.2, mean, "%");
    assert!(mean < 15.0, "dynamic overhead out of control: {mean:.1}%");
}
