//! Ablation (DESIGN.md §4): analyzing against the final (post-injection)
//! layout vs using the stale pre-injection profile. The paper's flow is
//! link-time, i.e. final-layout; this quantifies why that matters.

use ripple::{Ripple, RippleConfig};
use ripple_bench::{bench_budget, load_app};
use ripple_workloads::App;

fn main() {
    let budget = bench_budget() / 2;
    println!("\nAblation — final-layout analysis (no-prefetch, % speedup over LRU)");
    println!(
        "  {:<16} {:>14} {:>14}",
        "app", "final-layout", "stale-profile"
    );
    for app in [App::Cassandra, App::Kafka] {
        let loaded = load_app(app, budget);
        let mut speeds = Vec::new();
        for final_layout in [true, false] {
            let mut config = RippleConfig::default();
            config.final_layout_analysis = final_layout;
            let ripple = Ripple::train(&loaded.app.program, &loaded.layout, &loaded.trace, config)
                .expect("train");
            speeds.push(
                ripple
                    .evaluate(&loaded.trace)
                    .expect("evaluate")
                    .speedup_pct(),
            );
        }
        println!(
            "  {:<16} {:>14.2} {:>14.2}",
            app.name(),
            speeds[0],
            speeds[1]
        );
    }
}
