//! Figure 2: FDIP speedup over the no-prefetch LRU baseline, with LRU vs
//! ideal (Demand-MIN) replacement. Paper: FDIP+LRU 13.4 %, FDIP+ideal
//! 16.6 %, ideal cache 17.7 %.

use ripple_bench::{ensure_grid, print_paper_check, print_series};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

fn main() {
    let grid = ensure_grid();
    // Speedups are stored relative to the same-prefetcher LRU baseline;
    // chain them onto the no-prefetch baseline via cycles ratios using the
    // ideal-cache row shared by both configurations (the ideal cache
    // executes identical work under any prefetcher).
    let mut fdip_lru = Vec::new();
    let mut fdip_ideal = Vec::new();
    for &a in App::ALL.iter() {
        let none = grid.cell(a, PrefetcherKind::None);
        let fdip = grid.cell(a, PrefetcherKind::Fdip);
        // ideal_cache.speedup_pct = (lru_cycles / ic_cycles - 1) * 100 per
        // config; the ic cycles are identical, so:
        let none_lru_over_ic = 1.0 + none.ideal_cache.speedup_pct / 100.0;
        let fdip_lru_over_ic = 1.0 + fdip.ideal_cache.speedup_pct / 100.0;
        let fdip_vs_none = (none_lru_over_ic / fdip_lru_over_ic - 1.0) * 100.0;
        fdip_lru.push((a.name().to_string(), fdip_vs_none));
        let ideal_gain = 1.0 + fdip.ideal.speedup_pct / 100.0;
        fdip_ideal.push((
            a.name().to_string(),
            ((1.0 + fdip_vs_none / 100.0) * ideal_gain - 1.0) * 100.0,
        ));
    }
    print_series(
        "Fig. 2 — FDIP+LRU speedup over no-prefetch LRU",
        "%",
        &fdip_lru,
    );
    print_series(
        "Fig. 2 — FDIP+ideal-replacement speedup over no-prefetch LRU",
        "%",
        &fdip_ideal,
    );
    let m_lru = fdip_lru.iter().map(|r| r.1).sum::<f64>() / fdip_lru.len() as f64;
    let m_ideal = fdip_ideal.iter().map(|r| r.1).sum::<f64>() / fdip_ideal.len() as f64;
    print_paper_check("fig2 mean fdip+lru speedup", 13.4, m_lru, "%");
    print_paper_check("fig2 mean fdip+ideal speedup", 16.6, m_ideal, "%");
    assert!(m_ideal > m_lru, "ideal replacement must improve FDIP");
}
