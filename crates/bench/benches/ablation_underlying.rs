//! Ablation: Ripple is replacement-policy agnostic (§III). The same plan
//! assists true LRU, hardware tree-PLRU and metadata-free Random.
//!
//! Thin wrapper over the declarative `ablation-underlying` experiment
//! (`experiments/ablation-underlying.json`). Its `@underlying-agnostic`
//! token encodes the candidate rule this bench used to hand-roll:
//! offline ideals are excluded (they need a recorded future index, which
//! Ripple's online evaluation path does not provide), and RRIP /
//! predictive-reuse policies are excluded because they carry their own
//! insertion/eviction predictions — stacking Ripple's plan on top would
//! measure two predictors fighting, not policy-agnosticism. The walk
//! below only narrates those exclusions; the lab owns the measurement.

use ripple_bench::{bench_budget, bench_profile};
use ripple_lab::{builtin, run_experiment, LabOptions};
use ripple_sim::{PolicyFamily, PolicyRegistry};

fn print_skips() {
    for id in PolicyRegistry::global().all() {
        let d = id.descriptor();
        if d.needs_future_index {
            println!(
                "  (skipping {}: offline ideal, needs a recorded future index)",
                d.name
            );
        } else if matches!(d.family, PolicyFamily::Rrip | PolicyFamily::PredictiveReuse) {
            println!(
                "  (skipping {}: {} policies carry their own insertion/eviction \
                 predictions and are not a neutral substrate for Ripple's plan)",
                d.name,
                d.family.name()
            );
        }
    }
}

fn main() {
    let mut decl = builtin("ablation-underlying").expect("embedded declaration");
    decl.profiles = vec![bench_profile().name.to_string()];
    let resolved = decl.resolve().expect("declaration resolves");
    let options = LabOptions {
        instructions: Some(bench_budget() / 2),
        ..LabOptions::default()
    };
    let run = run_experiment(&resolved, &options).expect("lab run");

    println!("\nAblation — underlying policy (no-prefetch, % speedup over LRU)");
    print_skips();
    println!(
        "  {:<16} {:>10} {:>15} {:>13} {:>11}",
        "app", "plain-pol", "ripple-on-pol", "ripple-gain", "policy"
    );
    for (point, outcome) in run.points.iter().zip(&run.outcomes) {
        for row in &outcome.ripple {
            // The plain run of every non-LRU substrate sits in the
            // point's policy matrix; LRU itself is the baseline (0 %).
            let plain_sp = if row.underlying == "lru" {
                0.0
            } else {
                outcome
                    .policies
                    .iter()
                    .find(|(n, _)| *n == row.underlying)
                    .expect("underlying measured plain in the same point")
                    .1
                    .speedup_pct
            };
            let ripple_sp = row.row.speedup_pct;
            println!(
                "  {:<16} {:>10.2} {:>15.2} {:>13.2} {:>11}",
                point.app.name(),
                plain_sp,
                ripple_sp,
                ripple_sp - plain_sp,
                row.underlying
            );
            // On thrash-heavy apps plain Random can already beat LRU
            // (classic cyclic-pattern behaviour), leaving little for
            // Ripple; allow noise-level regressions there.
            assert!(
                ripple_sp > plain_sp - 0.25,
                "{}/{}: ripple must not meaningfully hurt its underlying policy",
                point.app.name(),
                row.underlying
            );
        }
    }
}
