//! Ablation: Ripple is replacement-policy agnostic (§III). The same plan
//! assists true LRU, hardware tree-PLRU and metadata-free Random.

use ripple::{Ripple, RippleConfig};
use ripple_bench::{bench_budget, load_app};
use ripple_sim::{simulate, PolicyKind, SimConfig};
use ripple_workloads::App;

fn main() {
    let budget = bench_budget() / 2;
    println!("\nAblation — underlying policy (no-prefetch, % speedup over LRU)");
    println!(
        "  {:<16} {:>10} {:>15} {:>13} {:>11}",
        "app", "plain-pol", "ripple-on-pol", "ripple-gain", "policy"
    );
    for app in [App::Cassandra, App::Verilator] {
        let loaded = load_app(app, budget);
        let lru = simulate(
            &loaded.app.program,
            &loaded.layout,
            &loaded.trace,
            &SimConfig::default(),
        );
        for underlying in [PolicyKind::Lru, PolicyKind::TreePlru, PolicyKind::Random] {
            let plain = simulate(
                &loaded.app.program,
                &loaded.layout,
                &loaded.trace,
                &SimConfig::default().with_policy(underlying),
            );
            let mut config = RippleConfig::default();
            config.underlying = underlying;
            let ripple = Ripple::train(&loaded.app.program, &loaded.layout, &loaded.trace, config)
                .expect("train");
            let o = ripple.evaluate(&loaded.trace).expect("evaluate");
            let plain_sp = plain.speedup_pct_over(&lru);
            let ripple_sp = o.speedup_pct();
            println!(
                "  {:<16} {:>10.2} {:>15.2} {:>13.2} {:>11}",
                app.name(),
                plain_sp,
                ripple_sp,
                ripple_sp - plain_sp,
                underlying.name()
            );
            // On thrash-heavy apps plain Random can already beat LRU
            // (classic cyclic-pattern behaviour), leaving little for
            // Ripple; allow noise-level regressions there.
            assert!(
                ripple_sp > plain_sp - 0.25,
                "{app}/{}: ripple must not meaningfully hurt its underlying policy",
                underlying.name()
            );
        }
    }
}
