//! Ablation: Ripple is replacement-policy agnostic (§III). The same plan
//! assists true LRU, hardware tree-PLRU and metadata-free Random.
//!
//! Underlying candidates are drawn from the policy registry: offline
//! ideals are excluded (they need a recorded future index, which Ripple's
//! online evaluation path does not provide), and RRIP / predictive-reuse
//! policies are excluded because they carry their own insertion/eviction
//! predictions — stacking Ripple's plan on top would measure two
//! predictors fighting, not policy-agnosticism.

use ripple::{Ripple, RippleConfig};
use ripple_bench::{bench_budget, load_app};
use ripple_sim::{simulate, PolicyFamily, PolicyKind, PolicyRegistry, SimConfig};
use ripple_workloads::App;

fn underlying_candidates() -> Vec<PolicyKind> {
    let mut underlyings = Vec::new();
    for id in PolicyRegistry::global().all() {
        let d = id.descriptor();
        if d.needs_future_index {
            println!(
                "  (skipping {}: offline ideal, needs a recorded future index)",
                d.name
            );
            continue;
        }
        if matches!(d.family, PolicyFamily::Rrip | PolicyFamily::PredictiveReuse) {
            println!(
                "  (skipping {}: {} policies carry their own insertion/eviction \
                 predictions and are not a neutral substrate for Ripple's plan)",
                d.name,
                d.family.name()
            );
            continue;
        }
        underlyings.push(id);
    }
    underlyings
}

fn main() {
    let budget = bench_budget() / 2;
    println!("\nAblation — underlying policy (no-prefetch, % speedup over LRU)");
    let underlyings = underlying_candidates();
    println!(
        "  {:<16} {:>10} {:>15} {:>13} {:>11}",
        "app", "plain-pol", "ripple-on-pol", "ripple-gain", "policy"
    );
    for app in [App::Cassandra, App::Verilator] {
        let loaded = load_app(app, budget);
        let lru = simulate(
            &loaded.app.program,
            &loaded.layout,
            &loaded.trace,
            &SimConfig::default(),
        );
        for &underlying in &underlyings {
            let plain = simulate(
                &loaded.app.program,
                &loaded.layout,
                &loaded.trace,
                &SimConfig::default().with_policy(underlying),
            );
            let mut config = RippleConfig::default();
            config.underlying = underlying;
            let ripple = Ripple::train(&loaded.app.program, &loaded.layout, &loaded.trace, config)
                .expect("train");
            let o = ripple.evaluate(&loaded.trace).expect("evaluate");
            let plain_sp = plain.speedup_pct_over(&lru);
            let ripple_sp = o.speedup_pct();
            println!(
                "  {:<16} {:>10.2} {:>15.2} {:>13.2} {:>11}",
                app.name(),
                plain_sp,
                ripple_sp,
                ripple_sp - plain_sp,
                underlying.name()
            );
            // On thrash-heavy apps plain Random can already beat LRU
            // (classic cyclic-pattern behaviour), leaving little for
            // Ripple; allow noise-level regressions there.
            assert!(
                ripple_sp > plain_sp - 0.25,
                "{app}/{}: ripple must not meaningfully hurt its underlying policy",
                underlying.name()
            );
        }
    }
}
