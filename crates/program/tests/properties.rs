//! Property tests for the program model, linker and rewriter.

use proptest::prelude::*;
use ripple_program::{
    lines_spanning, rewrite, Addr, BlockId, CodeKind, CodeLoc, Injection, InjectionPlan,
    Instruction, Layout, LayoutConfig, LineMapper, Program, ProgramBuilder, CACHE_LINE_BYTES,
};

/// Strategy: a linear program of 1..=12 functions, each with 1..=8 blocks
/// of 1..=10 instructions with random sizes.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(1u8..=15, 1..=10), 1..=8),
        1..=12,
    )
    .prop_map(|functions| {
        let mut b = ProgramBuilder::new();
        let mut entry = None;
        for blocks in &functions {
            let f = b.add_function("f", CodeKind::Static);
            entry.get_or_insert(f);
            let n = blocks.len();
            for (bi, sizes) in blocks.iter().enumerate() {
                let blk = b.add_block(f);
                for &s in sizes {
                    b.push_inst(blk, Instruction::other(s));
                }
                if bi + 1 == n {
                    b.push_inst(blk, Instruction::ret());
                }
            }
        }
        b.finish(entry.unwrap()).expect("linear programs validate")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Layout places blocks without overlap and in ascending address
    /// order within a function.
    #[test]
    fn layout_is_non_overlapping(program in arb_program()) {
        let layout = Layout::new(&program, &LayoutConfig::default());
        let mut spans: Vec<(u64, u64)> = (0..program.num_blocks())
            .map(|i| {
                let b = BlockId::new(i as u32);
                (layout.block_addr(b).get(), layout.block_end(b).get())
            })
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "blocks overlap: {w:?}");
        }
    }

    /// Every function entry is aligned as configured.
    #[test]
    fn layout_respects_function_alignment(program in arb_program()) {
        let cfg = LayoutConfig::default();
        let layout = Layout::new(&program, &cfg);
        for func in program.functions() {
            let entry = layout.block_addr(func.entry());
            prop_assert_eq!(entry.get() % cfg.function_align, 0);
        }
    }

    /// `loc_of_addr` inverts `addr_of` for every instruction boundary.
    #[test]
    fn loc_addr_roundtrip(program in arb_program()) {
        let layout = Layout::new(&program, &LayoutConfig::default());
        for block in program.blocks() {
            let mut off = 0u32;
            for inst in block.instructions() {
                let loc = CodeLoc::new(block.id(), off);
                let addr = layout.addr_of(loc);
                prop_assert_eq!(layout.loc_of_addr(addr), Some(loc));
                off += u32::from(inst.size_bytes());
            }
        }
    }

    /// The static footprint in lines matches the code-byte count within
    /// one line per block boundary (padding can add at most that).
    #[test]
    fn footprint_bounds(program in arb_program()) {
        let layout = Layout::new(&program, &LayoutConfig::default());
        let lines = layout.footprint_lines();
        let min_lines = layout.code_bytes().div_ceil(CACHE_LINE_BYTES);
        let max_lines = min_lines + program.num_blocks() as u64 + program.num_functions() as u64;
        prop_assert!(lines >= min_lines, "{lines} < {min_lines}");
        prop_assert!(lines <= max_lines, "{lines} > {max_lines}");
    }

    /// Rewriting with an arbitrary plan preserves the original instruction
    /// stream, keeps the program valid, and the line mapper tracks every
    /// victim line to the line holding the same first code byte.
    #[test]
    fn rewrite_preserves_code(
        program in arb_program(),
        picks in proptest::collection::vec((0usize..64, 0usize..64), 0..6),
    ) {
        let layout = Layout::new(&program, &LayoutConfig::default());
        let n = program.num_blocks();
        let mut plan = InjectionPlan::new();
        for (cue_raw, victim_raw) in picks {
            let cue = BlockId::new((cue_raw % n) as u32);
            let victim_block = BlockId::new((victim_raw % n) as u32);
            plan.push(Injection {
                cue,
                victim: CodeLoc::new(victim_block, 0),
            });
        }
        let rw = rewrite(&program, &layout, &plan);
        prop_assert!(rw.program.validate().is_ok());
        prop_assert_eq!(rw.program.injected_instruction_count(), plan.len() as u64);
        for (old, new) in program.blocks().iter().zip(rw.program.blocks()) {
            prop_assert_eq!(old.instructions(), new.original_instructions());
        }
        // Mapper: a line's identity follows its *first code byte* (which
        // may belong to an earlier block than the victim byte).
        let mapper = LineMapper::new(&program, &layout, &rw.layout);
        let origins = ripple_program::line_origins(&program, &layout);
        for inj in plan.injections() {
            let old_line = layout.line_of(inj.victim);
            let origin = origins[&old_line];
            prop_assert_eq!(mapper.map(old_line), rw.layout.line_of(origin));
        }
    }

    /// `lines_spanning` covers exactly the bytes of the range.
    #[test]
    fn lines_spanning_exact(start in 0u64..10_000, len in 0u64..1_000) {
        let lines: Vec<_> = lines_spanning(Addr::new(start), len).collect();
        if len == 0 {
            prop_assert!(lines.is_empty());
        } else {
            prop_assert_eq!(lines.first().copied(), Some(Addr::new(start).line()));
            prop_assert_eq!(
                lines.last().copied(),
                Some(Addr::new(start + len - 1).line())
            );
            // Consecutive and gap-free.
            for w in lines.windows(2) {
                prop_assert_eq!(w[0].next(), w[1]);
            }
        }
    }
}
