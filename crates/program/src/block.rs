//! Basic blocks.

use crate::ids::{BlockId, FuncId};
use crate::inst::{InstKind, Instruction};

/// A basic block: a straight-line sequence of instructions whose only
/// control transfer (if any) is its final, terminating instruction.
///
/// After Ripple rewrites a program, a block may additionally carry a prefix
/// of injected [`InstKind::Invalidate`] instructions before its original
/// instructions; [`BasicBlock::injected_prefix_len`] exposes where the
/// original code begins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    id: BlockId,
    func: FuncId,
    pos_in_func: u32,
    instructions: Vec<Instruction>,
    injected_prefix: u32,
}

impl BasicBlock {
    pub(crate) fn new(
        id: BlockId,
        func: FuncId,
        pos_in_func: u32,
        instructions: Vec<Instruction>,
    ) -> Self {
        BasicBlock {
            id,
            func,
            pos_in_func,
            instructions,
            injected_prefix: 0,
        }
    }

    /// This block's id.
    #[inline]
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The function this block belongs to.
    #[inline]
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// Zero-based position of this block within its function's block list.
    #[inline]
    pub fn pos_in_func(&self) -> u32 {
        self.pos_in_func
    }

    /// All instructions, including any injected invalidation prefix.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The number of injected invalidation instructions at the head of this
    /// block (zero for blocks Ripple has not touched).
    #[inline]
    pub fn injected_prefix_len(&self) -> u32 {
        self.injected_prefix
    }

    /// The block's original instructions, excluding any injected prefix.
    #[inline]
    pub fn original_instructions(&self) -> &[Instruction] {
        &self.instructions[self.injected_prefix as usize..]
    }

    /// Byte size of the injected prefix.
    pub fn injected_prefix_bytes(&self) -> u32 {
        self.instructions[..self.injected_prefix as usize]
            .iter()
            .map(|i| u32::from(i.size_bytes()))
            .sum()
    }

    /// Total encoded size of the block in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.instructions
            .iter()
            .map(|i| u32::from(i.size_bytes()))
            .sum()
    }

    /// Number of instructions (including injected ones).
    #[inline]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the block has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The block's terminator, if its last instruction transfers control.
    ///
    /// Blocks without a terminator fall through to the next block in
    /// function order.
    pub fn terminator(&self) -> Option<InstKind> {
        self.instructions
            .last()
            .map(|i| i.kind())
            .filter(|k| k.is_terminator())
    }

    /// Appends an instruction. Used only by the builder; blocks are
    /// immutable once a [`Program`](crate::Program) has been finished.
    pub(crate) fn push(&mut self, inst: Instruction) {
        self.instructions.push(inst);
    }

    /// Injects `invalidates` at the head of this block, recording them as
    /// prefix instructions. Used by the rewriter.
    pub(crate) fn inject_prefix(&mut self, invalidates: Vec<Instruction>) {
        debug_assert!(
            invalidates.iter().all(|i| i.kind().is_invalidate()),
            "only invalidate instructions may be injected"
        );
        let n = invalidates.len() as u32;
        let mut v = invalidates;
        v.extend_from_slice(&self.instructions);
        self.instructions = v;
        self.injected_prefix += n;
    }

    /// Replaces the injected invalidation prefix wholesale: any existing
    /// prefix is removed and `invalidates` becomes the new prefix. Used by
    /// the incremental rewriter when a block's victim list changes between
    /// fixpoint rounds; `set_injected_prefix(vec![])` restores the block to
    /// its original instruction stream.
    pub(crate) fn set_injected_prefix(&mut self, invalidates: Vec<Instruction>) {
        debug_assert!(
            invalidates.iter().all(|i| i.kind().is_invalidate()),
            "only invalidate instructions may be injected"
        );
        let n = invalidates.len() as u32;
        let mut v = invalidates;
        v.extend_from_slice(&self.instructions[self.injected_prefix as usize..]);
        self.instructions = v;
        self.injected_prefix = n;
    }

    /// Rewrites injected invalidate operands in place. Used by the rewriter
    /// after relinking to translate old-layout lines to new-layout lines.
    pub(crate) fn map_invalidate_operands(
        &mut self,
        mut f: impl FnMut(crate::addr::LineAddr) -> crate::addr::LineAddr,
    ) {
        for inst in &mut self.instructions[..self.injected_prefix as usize] {
            if let InstKind::Invalidate { line } = inst.kind() {
                *inst = Instruction::invalidate(f(line));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;

    fn sample_block() -> BasicBlock {
        BasicBlock::new(
            BlockId::new(0),
            FuncId::new(0),
            0,
            vec![
                Instruction::other(4),
                Instruction::other(3),
                Instruction::ret(),
            ],
        )
    }

    #[test]
    fn size_and_terminator() {
        let b = sample_block();
        assert_eq!(b.size_bytes(), 8);
        assert_eq!(b.terminator(), Some(InstKind::Return));
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn fallthrough_block_has_no_terminator() {
        let b = BasicBlock::new(
            BlockId::new(1),
            FuncId::new(0),
            1,
            vec![Instruction::other(4)],
        );
        assert_eq!(b.terminator(), None);
    }

    #[test]
    fn inject_prefix_tracks_original_instructions() {
        let mut b = sample_block();
        let original = b.instructions().to_vec();
        b.inject_prefix(vec![
            Instruction::invalidate(LineAddr::new(5)),
            Instruction::invalidate(LineAddr::new(9)),
        ]);
        assert_eq!(b.injected_prefix_len(), 2);
        assert_eq!(b.original_instructions(), &original[..]);
        assert_eq!(b.injected_prefix_bytes(), 14);
        assert_eq!(b.size_bytes(), 8 + 14);
        // Terminator is unchanged.
        assert_eq!(b.terminator(), Some(InstKind::Return));
    }

    #[test]
    fn map_invalidate_operands_only_touches_prefix() {
        let mut b = sample_block();
        b.inject_prefix(vec![Instruction::invalidate(LineAddr::new(5))]);
        b.map_invalidate_operands(|l| LineAddr::new(l.index() + 100));
        match b.instructions()[0].kind() {
            InstKind::Invalidate { line } => assert_eq!(line, LineAddr::new(105)),
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(b.original_instructions(), sample_block().instructions());
    }
}
