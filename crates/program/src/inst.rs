//! Instructions and instruction kinds.

use std::fmt;

use crate::addr::LineAddr;
use crate::ids::{BlockId, FuncId};

/// Encoded size, in bytes, of the `invalidate` instruction Ripple injects.
///
/// The paper's proposed instruction is modelled on Intel's `cldemote`
/// (opcode `0F 1C /0`); with a rip-relative memory operand it occupies seven
/// bytes, which is what we charge the static code footprint.
pub const INVALIDATE_BYTES: u8 = 7;

/// What an [`Instruction`] does to control flow (or to the I-cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// A non-control-flow instruction (ALU, load, store, ...).
    Other,
    /// A conditional branch. Taken goes to `target` (a block in the same
    /// function); not-taken falls through to the next block in function
    /// order.
    CondBranch {
        /// Taken-path successor block.
        target: BlockId,
    },
    /// An unconditional direct jump to `target` (same function).
    Jump {
        /// Jump destination block.
        target: BlockId,
    },
    /// An indirect jump; the destination block is only known at run time
    /// and must be recovered from the trace (a TIP packet).
    IndirectJump,
    /// A direct call to the entry block of `target`. On return, execution
    /// resumes at the next block in function order.
    Call {
        /// Callee function.
        target: FuncId,
    },
    /// An indirect call; the callee is only known at run time.
    IndirectCall,
    /// A return to the caller.
    Return,
    /// Ripple's injected I-cache invalidation hint. Evicts (or demotes)
    /// `line` from the L1 I-cache without touching other cache levels.
    Invalidate {
        /// Victim cache line, expressed in the *final* (post-injection)
        /// layout's address space.
        line: LineAddr,
    },
}

impl InstKind {
    /// Whether this instruction terminates a basic block.
    #[inline]
    pub const fn is_terminator(self) -> bool {
        matches!(
            self,
            InstKind::CondBranch { .. }
                | InstKind::Jump { .. }
                | InstKind::IndirectJump
                | InstKind::Call { .. }
                | InstKind::IndirectCall
                | InstKind::Return
        )
    }

    /// Whether this is a conditional branch (contributes a TNT trace bit).
    #[inline]
    pub const fn is_conditional(self) -> bool {
        matches!(self, InstKind::CondBranch { .. })
    }

    /// Whether the destination of this instruction is unknown statically.
    #[inline]
    pub const fn is_indirect(self) -> bool {
        matches!(self, InstKind::IndirectJump | InstKind::IndirectCall)
    }

    /// Whether this is a Ripple-injected invalidation.
    #[inline]
    pub const fn is_invalidate(self) -> bool {
        matches!(self, InstKind::Invalidate { .. })
    }
}

impl fmt::Display for InstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstKind::Other => write!(f, "op"),
            InstKind::CondBranch { target } => write!(f, "jcc {target}"),
            InstKind::Jump { target } => write!(f, "jmp {target}"),
            InstKind::IndirectJump => write!(f, "jmp *reg"),
            InstKind::Call { target } => write!(f, "call {target}"),
            InstKind::IndirectCall => write!(f, "call *reg"),
            InstKind::Return => write!(f, "ret"),
            InstKind::Invalidate { line } => write!(f, "invalidate {line}"),
        }
    }
}

/// A single (size, kind) instruction in a basic block.
///
/// Instruction bytes matter: the linker packs blocks by size, Ripple's
/// injected invalidations grow blocks, and that growth is exactly the
/// static-footprint overhead the paper measures in Fig. 11.
///
/// # Examples
///
/// ```
/// use ripple_program::{InstKind, Instruction};
///
/// let nop = Instruction::other(4);
/// assert_eq!(nop.size_bytes(), 4);
/// assert!(!nop.kind().is_terminator());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    size: u8,
    kind: InstKind,
}

impl Instruction {
    /// Creates an instruction with an explicit byte size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero (zero-length instructions would break
    /// layout arithmetic).
    pub fn new(size: u8, kind: InstKind) -> Self {
        assert!(size > 0, "instruction size must be non-zero");
        Instruction { size, kind }
    }

    /// A non-control-flow instruction of `size` bytes.
    pub fn other(size: u8) -> Self {
        Instruction::new(size, InstKind::Other)
    }

    /// A conditional branch to `target` (2-byte short jcc + padding = 4 B).
    pub fn cond_branch(target: BlockId) -> Self {
        Instruction::new(4, InstKind::CondBranch { target })
    }

    /// An unconditional direct jump (5 B near jmp).
    pub fn jump(target: BlockId) -> Self {
        Instruction::new(5, InstKind::Jump { target })
    }

    /// An indirect jump (3 B `jmp *reg` with REX).
    pub fn indirect_jump() -> Self {
        Instruction::new(3, InstKind::IndirectJump)
    }

    /// A direct call (5 B near call).
    pub fn call(target: FuncId) -> Self {
        Instruction::new(5, InstKind::Call { target })
    }

    /// An indirect call (3 B).
    pub fn indirect_call() -> Self {
        Instruction::new(3, InstKind::IndirectCall)
    }

    /// A return (1 B `ret`).
    pub fn ret() -> Self {
        Instruction::new(1, InstKind::Return)
    }

    /// A Ripple-injected invalidation of `line` ([`INVALIDATE_BYTES`] B).
    pub fn invalidate(line: LineAddr) -> Self {
        Instruction::new(INVALIDATE_BYTES, InstKind::Invalidate { line })
    }

    /// The encoded size of this instruction in bytes.
    #[inline]
    pub const fn size_bytes(self) -> u8 {
        self.size
    }

    /// The instruction kind.
    #[inline]
    pub const fn kind(self) -> InstKind {
        self.kind
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}B)", self.kind, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(Instruction::ret().kind().is_terminator());
        assert!(Instruction::jump(BlockId::new(0)).kind().is_terminator());
        assert!(Instruction::cond_branch(BlockId::new(1))
            .kind()
            .is_terminator());
        assert!(Instruction::call(FuncId::new(0)).kind().is_terminator());
        assert!(Instruction::indirect_jump().kind().is_terminator());
        assert!(Instruction::indirect_call().kind().is_terminator());
        assert!(!Instruction::other(4).kind().is_terminator());
        assert!(!Instruction::invalidate(LineAddr::new(0))
            .kind()
            .is_terminator());
    }

    #[test]
    fn indirect_classification() {
        assert!(Instruction::indirect_jump().kind().is_indirect());
        assert!(Instruction::indirect_call().kind().is_indirect());
        assert!(!Instruction::ret().kind().is_indirect());
        assert!(!Instruction::jump(BlockId::new(0)).kind().is_indirect());
    }

    #[test]
    fn sizes() {
        assert_eq!(Instruction::ret().size_bytes(), 1);
        assert_eq!(
            Instruction::invalidate(LineAddr::new(3)).size_bytes(),
            INVALIDATE_BYTES
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        let _ = Instruction::new(0, InstKind::Other);
    }

    #[test]
    fn display_is_nonempty() {
        for inst in [
            Instruction::other(4),
            Instruction::cond_branch(BlockId::new(9)),
            Instruction::invalidate(LineAddr::new(1)),
        ] {
            assert!(!inst.to_string().is_empty());
        }
    }
}
