//! The linker: assigns byte addresses to every basic block.
//!
//! Layout matters twice in the Ripple pipeline. First, it determines which
//! cache lines each basic block touches, which drives the whole I-cache
//! simulation. Second, injecting invalidation instructions grows blocks and
//! shifts every subsequent address — the "static and dynamic code bloat"
//! the paper charges against Ripple — so the same program is laid out twice
//! (before and after rewriting) and results are translated between the two
//! layouts by a [`LineMapper`](crate::LineMapper).

use crate::addr::{lines_spanning, Addr, LineAddr, LineSpan};
use crate::ids::{BlockId, CodeLoc, FuncId};
use crate::program::Program;

/// Linker parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutConfig {
    /// Base address of the text segment.
    pub base_addr: Addr,
    /// Alignment of function entries (power of two).
    pub function_align: u64,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig {
            base_addr: Addr::new(0x0040_0000),
            // Cache-line-aligned function entries, as post-link optimizers
            // (BOLT, Propeller) emit for hot data center code. This also
            // confines injection-induced address shifts to the function
            // being rewritten, keeping the profile valid for the rest of
            // the binary.
            function_align: 64,
        }
    }
}

/// Address assignment for every block of a [`Program`].
///
/// # Examples
///
/// ```
/// use ripple_program::{CodeKind, Instruction, Layout, LayoutConfig, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// let main = b.add_function("main", CodeKind::Static);
/// let bb = b.add_block(main);
/// b.push_inst(bb, Instruction::other(4));
/// b.push_inst(bb, Instruction::ret());
/// let program = b.finish(main)?;
///
/// let layout = Layout::new(&program, &LayoutConfig::default());
/// assert_eq!(layout.block_addr(bb), LayoutConfig::default().base_addr);
/// assert_eq!(layout.lines_of_block(bb).count(), 1);
/// # Ok::<(), ripple_program::ValidateProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    config: LayoutConfig,
    block_addr: Vec<Addr>,
    block_size: Vec<u32>,
    /// Byte size of each block's injected invalidation prefix (so code
    /// locations expressed against original instructions can be resolved).
    block_prefix: Vec<u32>,
    end: Addr,
}

impl Layout {
    /// Lays out `program` according to `config`.
    ///
    /// Functions are placed in id order at `function_align` boundaries;
    /// blocks are packed back-to-back inside each function, mirroring how a
    /// real linker emits a text section.
    pub fn new(program: &Program, config: &LayoutConfig) -> Self {
        let mut block_addr = vec![Addr::new(0); program.num_blocks()];
        let mut block_size = vec![0u32; program.num_blocks()];
        let mut block_prefix = vec![0u32; program.num_blocks()];
        let mut cursor = config.base_addr;
        for func in program.functions() {
            cursor = cursor.align_up(config.function_align);
            for &bid in func.blocks() {
                let block = program.block(bid);
                let size = block.size_bytes();
                block_addr[bid.index()] = cursor;
                block_size[bid.index()] = size;
                block_prefix[bid.index()] = block.injected_prefix_bytes();
                cursor = cursor.wrapping_add(u64::from(size));
            }
        }
        Layout {
            config: *config,
            block_addr,
            block_size,
            block_prefix,
            end: cursor,
        }
    }

    /// Incremental relink: lays out `program` by splicing unchanged
    /// per-function spans from `prev` and re-laying-out only the functions
    /// for which `dirty` returns true.
    ///
    /// `prev` must be a layout of the same program modulo edits confined to
    /// dirty functions (same function set, same block ids, clean functions'
    /// blocks byte-identical). Clean functions are copied from `prev` —
    /// shifted wholesale when an earlier dirty function changed size —
    /// without re-measuring their blocks; dirty functions are re-measured
    /// exactly as [`Layout::new`] would. The result is byte-identical to a
    /// from-scratch `Layout::new(program, prev.config())`.
    pub fn new_incremental(
        program: &Program,
        prev: &Layout,
        mut dirty: impl FnMut(FuncId) -> bool,
    ) -> Self {
        let mut block_addr = prev.block_addr.clone();
        let mut block_size = prev.block_size.clone();
        let mut block_prefix = prev.block_prefix.clone();
        let mut cursor = prev.config.base_addr;
        for func in program.functions() {
            cursor = cursor.align_up(prev.config.function_align);
            let blocks = func.blocks();
            let (Some(&first), Some(&last)) = (blocks.first(), blocks.last()) else {
                continue;
            };
            if dirty(func.id()) {
                for &bid in blocks {
                    let block = program.block(bid);
                    let size = block.size_bytes();
                    block_addr[bid.index()] = cursor;
                    block_size[bid.index()] = size;
                    block_prefix[bid.index()] = block.injected_prefix_bytes();
                    cursor = cursor.wrapping_add(u64::from(size));
                }
            } else {
                let delta = cursor
                    .get()
                    .wrapping_sub(prev.block_addr[first.index()].get());
                if delta != 0 {
                    for &bid in blocks {
                        block_addr[bid.index()] =
                            Addr::new(prev.block_addr[bid.index()].get().wrapping_add(delta));
                    }
                }
                cursor = block_addr[last.index()].wrapping_add(u64::from(block_size[last.index()]));
            }
        }
        Layout {
            config: prev.config,
            block_addr,
            block_size,
            block_prefix,
            end: cursor,
        }
    }

    /// The configuration this layout was produced with.
    #[inline]
    pub fn config(&self) -> &LayoutConfig {
        &self.config
    }

    /// Start address of a block.
    #[inline]
    pub fn block_addr(&self, id: BlockId) -> Addr {
        self.block_addr[id.index()]
    }

    /// Encoded size of a block in this layout.
    #[inline]
    pub fn block_size(&self, id: BlockId) -> u32 {
        self.block_size[id.index()]
    }

    /// One-past-the-end address of a block.
    #[inline]
    pub fn block_end(&self, id: BlockId) -> Addr {
        self.block_addr(id)
            .wrapping_add(u64::from(self.block_size(id)))
    }

    /// One-past-the-end address of the whole text segment.
    #[inline]
    pub fn end(&self) -> Addr {
        self.end
    }

    /// Total code bytes laid out (excluding alignment padding).
    pub fn code_bytes(&self) -> u64 {
        self.block_size.iter().map(|&s| u64::from(s)).sum()
    }

    /// Every cache line a block's instruction bytes touch, in fetch order.
    #[inline]
    pub fn lines_of_block(&self, id: BlockId) -> LineSpan {
        lines_spanning(self.block_addr(id), u64::from(self.block_size(id)))
    }

    /// Number of distinct cache lines in the text segment (static
    /// instruction footprint).
    pub fn footprint_lines(&self) -> u64 {
        let mut count = 0u64;
        let mut last: Option<LineAddr> = None;
        // Blocks are laid out in ascending address order, so a linear scan
        // with dedup against the previous line suffices.
        let mut order: Vec<usize> = (0..self.block_addr.len()).collect();
        order.sort_by_key(|&i| self.block_addr[i]);
        for i in order {
            for line in lines_spanning(self.block_addr[i], u64::from(self.block_size[i])) {
                if last != Some(line) {
                    count += 1;
                    last = Some(line);
                }
            }
        }
        count
    }

    /// The first and last cache line of the text segment, or `None` when
    /// the program has no code bytes.
    ///
    /// Every line any block touches falls inside this inclusive range; the
    /// simulator's line interner builds its dense table from it.
    pub fn line_bounds(&self) -> Option<(LineAddr, LineAddr)> {
        let mut first: Option<Addr> = None;
        let mut last_end: Option<Addr> = None;
        for i in 0..self.block_addr.len() {
            if self.block_size[i] == 0 {
                continue;
            }
            let start = self.block_addr[i];
            let end = start.wrapping_add(u64::from(self.block_size[i]));
            first = Some(first.map_or(start, |f| f.min(start)));
            last_end = Some(last_end.map_or(end, |l| l.max(end)));
        }
        let (first, last_end) = (first?, last_end?);
        Some((first.line(), Addr::new(last_end.get() - 1).line()))
    }

    /// Resolves a [`CodeLoc`] (block + offset into *original* instruction
    /// bytes) to a byte address in this layout, skipping any injected
    /// invalidation prefix.
    #[inline]
    pub fn addr_of(&self, loc: CodeLoc) -> Addr {
        self.block_addr(loc.block)
            .wrapping_add(u64::from(self.block_prefix[loc.block.index()]))
            .wrapping_add(u64::from(loc.offset))
    }

    /// Resolves a [`CodeLoc`] to the cache line holding that byte.
    #[inline]
    pub fn line_of(&self, loc: CodeLoc) -> LineAddr {
        self.addr_of(loc).line()
    }

    /// Finds the block containing byte address `addr`, if any, along with
    /// the offset into the block's *original* bytes.
    ///
    /// Bytes within an injected prefix report offset 0 of the same block.
    pub fn loc_of_addr(&self, addr: Addr) -> Option<CodeLoc> {
        // Binary search over blocks sorted by address.
        let order = self.sorted_order();
        let pos = order.partition_point(|&i| self.block_addr[i] <= addr);
        if pos == 0 {
            return None;
        }
        let i = order[pos - 1];
        let start = self.block_addr[i];
        let size = u64::from(self.block_size[i]);
        if addr.get() >= start.get() + size {
            return None;
        }
        let prefix = u64::from(self.block_prefix[i]);
        let raw_off = addr.get() - start.get();
        let offset = raw_off.saturating_sub(prefix) as u32;
        Some(CodeLoc::new(BlockId::new(i as u32), offset))
    }

    fn sorted_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.block_addr.len()).collect();
        order.sort_by_key(|&i| self.block_addr[i]);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::CodeKind;
    use crate::inst::Instruction;
    use crate::program::ProgramBuilder;

    fn program_with_sizes(sizes: &[&[u8]]) -> Program {
        // One function per slice; each inner slice lists per-block byte
        // sizes (last instruction replaced by a 1-byte ret in final block).
        let mut b = ProgramBuilder::new();
        let mut entry = None;
        for (fi, blocks) in sizes.iter().enumerate() {
            let f = b.add_function(format!("f{fi}"), CodeKind::Static);
            entry.get_or_insert(f);
            let n = blocks.len();
            for (bi, &sz) in blocks.iter().enumerate() {
                let blk = b.add_block(f);
                if bi + 1 == n {
                    if sz > 1 {
                        b.push_inst(blk, Instruction::other(sz - 1));
                    }
                    b.push_inst(blk, Instruction::ret());
                } else {
                    b.push_inst(blk, Instruction::other(sz));
                }
            }
        }
        b.finish(entry.unwrap()).unwrap()
    }

    #[test]
    fn blocks_are_packed_contiguously() {
        let p = program_with_sizes(&[&[10, 20, 5]]);
        let l = Layout::new(&p, &LayoutConfig::default());
        let base = LayoutConfig::default().base_addr;
        assert_eq!(l.block_addr(BlockId::new(0)), base);
        assert_eq!(l.block_addr(BlockId::new(1)), base.wrapping_add(10));
        assert_eq!(l.block_addr(BlockId::new(2)), base.wrapping_add(30));
        assert_eq!(l.end(), base.wrapping_add(35));
        assert_eq!(l.code_bytes(), 35);
    }

    #[test]
    fn functions_are_aligned() {
        let p = program_with_sizes(&[&[10], &[10]]);
        let l = Layout::new(&p, &LayoutConfig::default());
        let f1_addr = l.block_addr(BlockId::new(1));
        assert_eq!(f1_addr.get() % 16, 0);
        assert!(f1_addr > l.block_addr(BlockId::new(0)));
    }

    #[test]
    fn lines_of_block_spans_boundaries() {
        let p = program_with_sizes(&[&[100]]);
        let l = Layout::new(&p, &LayoutConfig::default());
        // 100 bytes starting at a 64B-aligned base covers 2 lines.
        assert_eq!(l.lines_of_block(BlockId::new(0)).count(), 2);
    }

    #[test]
    fn footprint_counts_unique_lines() {
        let p = program_with_sizes(&[&[32, 32], &[64]]);
        let l = Layout::new(&p, &LayoutConfig::default());
        // f0: 64 bytes = 1 line; f1 aligned to next 16B -> starts at +64,
        // also line-aligned here, 64 bytes = 1 line.
        assert_eq!(l.footprint_lines(), 2);
    }

    #[test]
    fn line_bounds_cover_every_block_line() {
        let p = program_with_sizes(&[&[10, 20], &[30, 5], &[100]]);
        let l = Layout::new(&p, &LayoutConfig::default());
        let (first, last) = l.line_bounds().unwrap();
        for i in 0..p.num_blocks() {
            for line in l.lines_of_block(BlockId::new(i as u32)) {
                assert!(first <= line && line <= last, "line {line} out of bounds");
            }
        }
        // The bounds are tight: both ends are touched by some block.
        assert_eq!(first, LayoutConfig::default().base_addr.line());
        let max_end = (0..p.num_blocks())
            .map(|i| l.block_end(BlockId::new(i as u32)).get())
            .max()
            .unwrap();
        assert_eq!(last, Addr::new(max_end - 1).line());
    }

    #[test]
    fn addr_of_loc_roundtrip() {
        let p = program_with_sizes(&[&[10, 20, 5]]);
        let l = Layout::new(&p, &LayoutConfig::default());
        let loc = CodeLoc::new(BlockId::new(1), 7);
        let addr = l.addr_of(loc);
        assert_eq!(l.loc_of_addr(addr), Some(loc));
    }

    #[test]
    fn loc_of_addr_outside_code() {
        let p = program_with_sizes(&[&[10]]);
        let l = Layout::new(&p, &LayoutConfig::default());
        assert_eq!(l.loc_of_addr(Addr::new(0)), None);
        assert_eq!(l.loc_of_addr(l.end()), None);
    }

    #[test]
    fn non_overlapping_blocks() {
        let p = program_with_sizes(&[&[10, 20], &[30, 5], &[64]]);
        let l = Layout::new(&p, &LayoutConfig::default());
        let mut spans: Vec<(u64, u64)> = (0..p.num_blocks())
            .map(|i| {
                let b = BlockId::new(i as u32);
                (l.block_addr(b).get(), l.block_end(b).get())
            })
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "blocks overlap: {w:?}");
        }
    }
}
