//! Error types for program construction and validation.

use std::error::Error;
use std::fmt;

use crate::ids::{BlockId, FuncId};

/// Errors produced while validating a [`Program`](crate::Program).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateProgramError {
    /// A function has no basic blocks.
    EmptyFunction(FuncId),
    /// A basic block has no instructions.
    EmptyBlock(BlockId),
    /// A branch targets a block outside its own function.
    CrossFunctionBranch {
        /// Block containing the offending branch.
        from: BlockId,
        /// The out-of-function target.
        to: BlockId,
    },
    /// A branch or call references an id that does not exist.
    DanglingTarget {
        /// Block containing the offending instruction.
        from: BlockId,
    },
    /// A block other than the last one in its function has no terminator
    /// and therefore falls through — allowed — but the *last* block of a
    /// function must end in a return or jump so execution cannot run off
    /// the end of the function.
    FallthroughOffFunctionEnd(BlockId),
    /// A terminator appears before the last instruction of a block.
    MidBlockTerminator(BlockId),
    /// The designated entry function does not exist.
    MissingEntry(FuncId),
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::EmptyFunction(func) => {
                write!(f, "function {func} has no basic blocks")
            }
            ValidateProgramError::EmptyBlock(block) => {
                write!(f, "basic block {block} has no instructions")
            }
            ValidateProgramError::CrossFunctionBranch { from, to } => {
                write!(f, "block {from} branches to {to} in another function")
            }
            ValidateProgramError::DanglingTarget { from } => {
                write!(f, "block {from} references a nonexistent target")
            }
            ValidateProgramError::FallthroughOffFunctionEnd(block) => {
                write!(f, "last block {block} of its function may fall through")
            }
            ValidateProgramError::MidBlockTerminator(block) => {
                write!(
                    f,
                    "block {block} has a terminator before its last instruction"
                )
            }
            ValidateProgramError::MissingEntry(func) => {
                write!(f, "entry function {func} does not exist")
            }
        }
    }
}

impl Error for ValidateProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs = [
            ValidateProgramError::EmptyFunction(FuncId::new(0)),
            ValidateProgramError::EmptyBlock(BlockId::new(1)),
            ValidateProgramError::CrossFunctionBranch {
                from: BlockId::new(1),
                to: BlockId::new(2),
            },
            ValidateProgramError::DanglingTarget {
                from: BlockId::new(3),
            },
            ValidateProgramError::FallthroughOffFunctionEnd(BlockId::new(4)),
            ValidateProgramError::MidBlockTerminator(BlockId::new(5)),
            ValidateProgramError::MissingEntry(FuncId::new(6)),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
