//! Byte addresses and cache-line addresses.
//!
//! The whole workspace reasons about instruction bytes laid out in a flat
//! virtual address space and about the 64-byte cache lines those bytes fall
//! into. Two newtypes keep the two units apart statically: [`Addr`] is a byte
//! address, [`LineAddr`] is a cache-line index (a byte address shifted right
//! by [`CACHE_LINE_SHIFT`]).

use std::fmt;

/// Size of an instruction cache line in bytes (fixed at 64 B, as in the
/// paper's Table II and in every Intel server part of the last decade).
pub const CACHE_LINE_BYTES: u64 = 64;

/// `log2(CACHE_LINE_BYTES)`.
pub const CACHE_LINE_SHIFT: u32 = 6;

/// A byte address in the simulated virtual address space.
///
/// # Examples
///
/// ```
/// use ripple_program::{Addr, CACHE_LINE_BYTES};
///
/// let a = Addr::new(0x40_0010);
/// assert_eq!(a.line().base_addr(), Addr::new(0x40_0000));
/// assert_eq!(a.offset_in_line(), 0x10);
/// assert_eq!(a.wrapping_add(CACHE_LINE_BYTES).line(), a.line().next());
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the cache line this byte falls into.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> CACHE_LINE_SHIFT)
    }

    /// Returns the byte offset of this address within its cache line.
    #[inline]
    pub const fn offset_in_line(self) -> u64 {
        self.0 & (CACHE_LINE_BYTES - 1)
    }

    /// Address `bytes` past this one, wrapping on overflow.
    #[inline]
    pub const fn wrapping_add(self, bytes: u64) -> Self {
        Addr(self.0.wrapping_add(bytes))
    }

    /// Aligns this address upward to `align` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `align` is not a power of two.
    #[inline]
    pub fn align_up(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        Addr((self.0 + align - 1) & !(align - 1))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

/// A cache-line address: the index of a 64-byte line in the address space.
///
/// `LineAddr` is what replacement policies, prefetchers and Ripple's
/// eviction analysis operate on; it deliberately cannot be confused with a
/// byte [`Addr`].
///
/// # Examples
///
/// ```
/// use ripple_program::{Addr, LineAddr};
///
/// let line = Addr::new(0x1000).line();
/// assert_eq!(line, LineAddr::new(0x40));
/// assert_eq!(line.base_addr(), Addr::new(0x1000));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// Returns the raw line index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this line.
    #[inline]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << CACHE_LINE_SHIFT)
    }

    /// The line immediately following this one (next-line prefetch target).
    #[inline]
    pub const fn next(self) -> Self {
        LineAddr(self.0.wrapping_add(1))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Iterator over the cache lines spanned by a byte range.
///
/// Produced by [`lines_spanning`].
#[derive(Debug, Clone)]
pub struct LineSpan {
    next: u64,
    end: u64,
}

impl Iterator for LineSpan {
    type Item = LineAddr;

    fn next(&mut self) -> Option<LineAddr> {
        if self.next <= self.end {
            let line = LineAddr(self.next);
            self.next += 1;
            Some(line)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end + 1).saturating_sub(self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for LineSpan {}

/// Returns an iterator over every cache line touched by the byte range
/// `[start, start + len)`.
///
/// An empty range (`len == 0`) touches no lines.
///
/// # Examples
///
/// ```
/// use ripple_program::{lines_spanning, Addr, LineAddr};
///
/// let lines: Vec<_> = lines_spanning(Addr::new(60), 8).collect();
/// assert_eq!(lines, vec![LineAddr::new(0), LineAddr::new(1)]);
/// assert_eq!(lines_spanning(Addr::new(0), 0).count(), 0);
/// ```
pub fn lines_spanning(start: Addr, len: u64) -> LineSpan {
    if len == 0 {
        // An empty iterator: next > end.
        return LineSpan { next: 1, end: 0 };
    }
    let first = start.line().index();
    let last = start.wrapping_add(len - 1).line().index();
    LineSpan {
        next: first,
        end: last,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_geometry() {
        assert_eq!(Addr::new(0).line(), LineAddr::new(0));
        assert_eq!(Addr::new(63).line(), LineAddr::new(0));
        assert_eq!(Addr::new(64).line(), LineAddr::new(1));
        assert_eq!(Addr::new(64).offset_in_line(), 0);
        assert_eq!(Addr::new(127).offset_in_line(), 63);
    }

    #[test]
    fn align_up_behaviour() {
        assert_eq!(Addr::new(0).align_up(16), Addr::new(0));
        assert_eq!(Addr::new(1).align_up(16), Addr::new(16));
        assert_eq!(Addr::new(16).align_up(16), Addr::new(16));
        assert_eq!(Addr::new(17).align_up(64), Addr::new(64));
    }

    #[test]
    fn line_next_and_base() {
        let l = LineAddr::new(7);
        assert_eq!(l.next(), LineAddr::new(8));
        assert_eq!(l.base_addr(), Addr::new(7 * 64));
        assert_eq!(l.base_addr().line(), l);
    }

    #[test]
    fn span_single_line() {
        let lines: Vec<_> = lines_spanning(Addr::new(10), 20).collect();
        assert_eq!(lines, vec![LineAddr::new(0)]);
    }

    #[test]
    fn span_multiple_lines() {
        let lines: Vec<_> = lines_spanning(Addr::new(0), 129).collect();
        assert_eq!(
            lines,
            vec![LineAddr::new(0), LineAddr::new(1), LineAddr::new(2)]
        );
    }

    #[test]
    fn span_exact_boundary() {
        // [64, 128) is exactly line 1.
        let lines: Vec<_> = lines_spanning(Addr::new(64), 64).collect();
        assert_eq!(lines, vec![LineAddr::new(1)]);
    }

    #[test]
    fn span_empty() {
        assert_eq!(lines_spanning(Addr::new(1234), 0).count(), 0);
    }

    #[test]
    fn span_size_hint_is_exact() {
        let span = lines_spanning(Addr::new(60), 200);
        assert_eq!(span.len(), span.clone().count());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(0x2).to_string(), "L0x2");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }

    #[test]
    fn conversions() {
        let a: Addr = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
    }
}
