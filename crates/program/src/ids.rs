//! Compact identifiers for program entities.

use std::fmt;

/// Identifier of a function within a [`Program`](crate::Program).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        FuncId(raw)
    }

    /// The raw index, usable for `Vec` indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw value.
    #[inline]
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of a basic block within a [`Program`](crate::Program).
///
/// Block ids are global across the program (not per-function), which lets a
/// dynamic trace be a flat `Vec<BlockId>` and lets per-block analysis state
/// live in dense vectors.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        BlockId(raw)
    }

    /// The raw index, usable for `Vec` indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw value.
    #[inline]
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A byte location inside a basic block, independent of layout.
///
/// `offset` counts bytes of the block's *original* (pre-injection)
/// instructions, so a `CodeLoc` recorded against one layout can be resolved
/// against a rewritten layout of the same program.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CodeLoc {
    /// Enclosing basic block.
    pub block: BlockId,
    /// Byte offset from the start of the block's original instructions.
    pub offset: u32,
}

impl CodeLoc {
    /// Creates a code location.
    pub const fn new(block: BlockId, offset: u32) -> Self {
        CodeLoc { block, offset }
    }
}

impl fmt::Display for CodeLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.block, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        assert_eq!(FuncId::new(3).index(), 3);
        assert_eq!(BlockId::new(9).get(), 9);
        assert_eq!(FuncId::new(3).to_string(), "f3");
        assert_eq!(BlockId::new(9).to_string(), "bb9");
    }

    #[test]
    fn code_loc_display() {
        assert_eq!(CodeLoc::new(BlockId::new(2), 17).to_string(), "bb2+17");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(BlockId::new(1) < BlockId::new(2));
        assert!(FuncId::new(0) < FuncId::new(1));
    }
}
