//! Link-time injection of invalidation instructions.
//!
//! Ripple's analysis runs against a *profiled* layout (v0). Injection adds
//! instructions, which shifts addresses, producing a *rewritten* layout
//! (v1). Victim cache lines discovered in v0 must therefore be translated
//! to v1; [`LineMapper`] performs that translation by following the first
//! code byte of each v0 line to its new home.

use std::collections::{HashMap, HashSet};

use ripple_json::{object, FromJson, JsonError, ToJson, Value};

use crate::addr::{lines_spanning, LineAddr, CACHE_LINE_BYTES};
use crate::ids::{BlockId, CodeLoc, FuncId};
use crate::inst::Instruction;
use crate::layout::{Layout, LayoutConfig};
use crate::program::Program;

/// One planned injection: when `cue` executes, invalidate the line holding
/// `victim` (a code location in the profiled layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Injection {
    /// Block that receives the invalidate instruction.
    pub cue: BlockId,
    /// First code byte of the victim line, in profiled-layout terms.
    pub victim: CodeLoc,
}

/// A set of injections to apply to a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionPlan {
    injections: Vec<Injection>,
}

impl InjectionPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an injection, deduplicating identical (cue, victim) pairs.
    pub fn push(&mut self, injection: Injection) {
        if !self.injections.contains(&injection) {
            self.injections.push(injection);
        }
    }

    /// The planned injections.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Number of static invalidate instructions this plan will insert.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }
}

impl ToJson for Injection {
    fn to_json(&self) -> Value {
        object([
            ("cue", self.cue.get().to_json()),
            ("victim_block", self.victim.block.get().to_json()),
            ("victim_offset", self.victim.offset.to_json()),
        ])
    }
}

impl FromJson for Injection {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Injection {
            cue: BlockId::new(u32::from_json(v.get("cue")?)?),
            victim: CodeLoc::new(
                BlockId::new(u32::from_json(v.get("victim_block")?)?),
                u32::from_json(v.get("victim_offset")?)?,
            ),
        })
    }
}

impl ToJson for InjectionPlan {
    fn to_json(&self) -> Value {
        object([("injections", self.injections.to_json())])
    }
}

impl FromJson for InjectionPlan {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let injections: Vec<Injection> = FromJson::from_json(v.get("injections")?)?;
        Ok(injections.into_iter().collect())
    }
}

impl FromIterator<Injection> for InjectionPlan {
    fn from_iter<I: IntoIterator<Item = Injection>>(iter: I) -> Self {
        let mut plan = InjectionPlan::new();
        for inj in iter {
            plan.push(inj);
        }
        plan
    }
}

impl Extend<Injection> for InjectionPlan {
    fn extend<I: IntoIterator<Item = Injection>>(&mut self, iter: I) {
        for inj in iter {
            self.push(inj);
        }
    }
}

/// Translates profiled-layout (v0) cache lines to rewritten-layout (v1)
/// cache lines.
///
/// A v0 line is followed through its first *code* byte: the block and
/// original-instruction offset holding that byte are located in v0, then
/// resolved against v1. Lines containing no code (alignment padding) map to
/// themselves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LineMapper {
    map: HashMap<LineAddr, LineAddr>,
}

impl LineMapper {
    /// Builds a mapper between two layouts of the same program (same block
    /// ids; v1 may contain injected prefixes).
    pub fn new(program: &Program, old_layout: &Layout, new_layout: &Layout) -> Self {
        let mut map = HashMap::new();
        for block in program.blocks() {
            let id = block.id();
            let start = old_layout.block_addr(id);
            let size = u64::from(old_layout.block_size(id));
            if size == 0 {
                continue;
            }
            for line in crate::addr::lines_spanning(start, size) {
                // First code byte of this line within this block.
                let line_base = line.base_addr();
                let first_byte = line_base.max(start);
                // Only the block owning the line's first in-code byte
                // defines the mapping; earlier blocks win.
                map.entry(line).or_insert_with(|| {
                    let offset = (first_byte.get() - start.get()) as u32;
                    new_layout.line_of(CodeLoc::new(id, offset))
                });
            }
        }
        LineMapper { map }
    }

    /// Maps a v0 line to its v1 equivalent (identity for unknown lines).
    #[inline]
    pub fn map(&self, line: LineAddr) -> LineAddr {
        self.map.get(&line).copied().unwrap_or(line)
    }

    /// Number of mapped lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether any lines are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Maps every cache line of the text segment to the [`CodeLoc`] of its
/// first code byte under `layout`.
///
/// This is how analysis results (victim lines, found in a *profiled*
/// layout) are expressed in layout-independent terms so they survive the
/// relinking that injection causes. Lines spanning two blocks are owned by
/// the block holding their first code byte.
pub fn line_origins(program: &Program, layout: &Layout) -> HashMap<LineAddr, CodeLoc> {
    let mut map = HashMap::new();
    for block in program.blocks() {
        let id = block.id();
        let start = layout.block_addr(id);
        let size = u64::from(layout.block_size(id));
        if size == 0 {
            continue;
        }
        for line in crate::addr::lines_spanning(start, size) {
            let first_byte = line.base_addr().max(start);
            map.entry(line).or_insert_with(|| {
                let offset = (first_byte.get() - start.get()) as u32;
                CodeLoc::new(id, offset)
            });
        }
    }
    map
}

/// Result of [`rewrite`]: the rewritten program, its new layout, and the
/// v0→v1 line mapper.
#[derive(Debug, Clone)]
pub struct Rewritten {
    /// The program with invalidate instructions injected.
    pub program: Program,
    /// Layout of the rewritten program.
    pub layout: Layout,
    /// Maps profiled-layout lines to rewritten-layout lines.
    pub mapper: LineMapper,
}

/// Applies `plan` to `program`, relinks, and fixes up invalidate operands.
///
/// The operand of every injected instruction is the *rewritten-layout* line
/// of the victim, i.e. exactly what the simulated `invalidate` instruction
/// must evict at run time.
///
/// # Examples
///
/// ```
/// use ripple_program::{
///     rewrite, CodeKind, CodeLoc, Injection, InjectionPlan, Instruction, Layout,
///     LayoutConfig, ProgramBuilder,
/// };
///
/// let mut b = ProgramBuilder::new();
/// let main = b.add_function("main", CodeKind::Static);
/// let bb0 = b.add_block(main);
/// let bb1 = b.add_block(main);
/// b.push_inst(bb0, Instruction::other(60));
/// b.push_inst(bb1, Instruction::ret());
/// let program = b.finish(main)?;
/// let layout = Layout::new(&program, &LayoutConfig::default());
///
/// let mut plan = InjectionPlan::new();
/// plan.push(Injection { cue: bb1, victim: CodeLoc::new(bb0, 0) });
/// let rewritten = rewrite(&program, &layout, &plan);
/// assert_eq!(rewritten.program.injected_instruction_count(), 1);
/// # Ok::<(), ripple_program::ValidateProgramError>(())
/// ```
pub fn rewrite(program: &Program, old_layout: &Layout, plan: &InjectionPlan) -> Rewritten {
    let mut new_program = program.clone();

    // Group injections per cue block, preserving plan order.
    let mut per_block: HashMap<BlockId, Vec<CodeLoc>> = HashMap::new();
    for inj in plan.injections() {
        per_block.entry(inj.cue).or_default().push(inj.victim);
    }

    // Insert placeholder invalidates carrying the *old-layout* line; the
    // operands are remapped once the new layout is known.
    for (cue, victims) in &per_block {
        let instrs: Vec<Instruction> = victims
            .iter()
            .map(|&loc| Instruction::invalidate(old_layout.line_of(loc)))
            .collect();
        new_program.blocks_mut()[cue.index()].inject_prefix(instrs);
    }

    let new_layout = Layout::new(&new_program, old_layout.config());
    let mapper = LineMapper::new(program, old_layout, &new_layout);

    for block in new_program.blocks_mut() {
        block.map_invalidate_operands(|old_line| mapper.map(old_line));
    }

    Rewritten {
        program: new_program,
        layout: new_layout,
        mapper,
    }
}

/// Groups a plan's injections per cue block, preserving plan order.
fn victims_per_block(plan: &InjectionPlan) -> HashMap<BlockId, Vec<CodeLoc>> {
    let mut per_block: HashMap<BlockId, Vec<CodeLoc>> = HashMap::new();
    for inj in plan.injections() {
        per_block.entry(inj.cue).or_default().push(inj.victim);
    }
    per_block
}

/// Incremental version of [`rewrite`] for the layout fixpoint loop:
/// produces a [`Rewritten`] identical to `rewrite(program, old_layout,
/// plan)` by editing `prev` — the `Rewritten` produced from the *same*
/// `program`/`old_layout` and `prev_plan` — instead of starting over.
///
/// Only blocks whose per-cue victim list changed between `prev_plan` and
/// `plan` are touched: their invalidation prefixes are replaced, their
/// enclosing functions are re-laid-out, and every other function's layout
/// span is spliced from `prev.layout` (shifted wholesale when an earlier
/// function changed size). The v0→v1 [`LineMapper`] is patched the same
/// way: dirty functions' lines are recomputed, clean functions' mapped
/// lines are shifted by their function's displacement.
///
/// The dirty-set and splice rules rely on functions never sharing a cache
/// line, which holds when `function_align` is a multiple of the line size;
/// for other alignments this falls back to the from-scratch [`rewrite`].
pub fn rewrite_incremental(
    program: &Program,
    old_layout: &Layout,
    plan: &InjectionPlan,
    prev_plan: &InjectionPlan,
    prev: Rewritten,
) -> Rewritten {
    let align = old_layout.config().function_align;
    if align == 0 || !align.is_multiple_of(CACHE_LINE_BYTES) {
        return rewrite(program, old_layout, plan);
    }

    let per_block_new = victims_per_block(plan);
    let per_block_prev = victims_per_block(prev_plan);

    // Dirty = any block whose victim list (order-sensitive: it dictates
    // the injected byte sequence) changed between the two plans.
    let empty: Vec<CodeLoc> = Vec::new();
    let mut dirty_blocks: Vec<BlockId> = per_block_new
        .keys()
        .chain(per_block_prev.keys())
        .copied()
        .collect::<HashSet<_>>()
        .into_iter()
        .filter(|b| {
            per_block_new.get(b).unwrap_or(&empty) != per_block_prev.get(b).unwrap_or(&empty)
        })
        .collect();
    dirty_blocks.sort_unstable();
    let dirty_funcs: HashSet<FuncId> = dirty_blocks
        .iter()
        .map(|&b| program.block(b).func())
        .collect();

    let Rewritten {
        program: mut new_program,
        layout: prev_layout,
        mut mapper,
    } = prev;

    // 1. Replace the invalidation prefix of every dirty block; operands
    //    are placeholders fixed up against the new layout below.
    for &cue in &dirty_blocks {
        let instrs: Vec<Instruction> = per_block_new
            .get(&cue)
            .map(|victims| {
                victims
                    .iter()
                    .map(|&loc| Instruction::invalidate(old_layout.line_of(loc)))
                    .collect()
            })
            .unwrap_or_default();
        new_program.blocks_mut()[cue.index()].set_injected_prefix(instrs);
    }

    // 2. Splice the layout: re-lay-out dirty functions, copy (and shift)
    //    everything else from the previous round's layout.
    let new_layout =
        Layout::new_incremental(&new_program, &prev_layout, |f| dirty_funcs.contains(&f));

    // 3. Patch the v0→v1 mapper per function.
    for func in program.functions() {
        let blocks = func.blocks();
        let (Some(&first), Some(&last)) = (blocks.first(), blocks.last()) else {
            continue;
        };
        let v0_start = old_layout.block_addr(first);
        let v0_end = old_layout.block_end(last);
        if v0_end == v0_start {
            continue; // no code bytes, no mapped lines
        }
        if dirty_funcs.contains(&func.id()) {
            // Recompute this function's lines from scratch. Blocks iterate
            // in id order (ties on shared lines go to the lowest id, as in
            // LineMapper::new, which walks the whole program by id).
            let mut ids: Vec<BlockId> = blocks.to_vec();
            ids.sort_unstable();
            for line in lines_spanning(v0_start, v0_end.get() - v0_start.get()) {
                mapper.map.remove(&line);
            }
            for &bid in &ids {
                let start = old_layout.block_addr(bid);
                let size = u64::from(old_layout.block_size(bid));
                if size == 0 {
                    continue;
                }
                for line in lines_spanning(start, size) {
                    let first_byte = line.base_addr().max(start);
                    mapper.map.entry(line).or_insert_with(|| {
                        let offset = (first_byte.get() - start.get()) as u32;
                        new_layout.line_of(CodeLoc::new(bid, offset))
                    });
                }
            }
        } else {
            // Clean function: its code moved wholesale (or not at all).
            // Function starts are line-aligned, so the byte displacement
            // is a whole number of lines.
            let delta_lines = new_layout
                .block_addr(first)
                .line()
                .index()
                .wrapping_sub(prev_layout.block_addr(first).line().index());
            if delta_lines == 0 {
                continue;
            }
            for line in lines_spanning(v0_start, v0_end.get() - v0_start.get()) {
                if let Some(mapped) = mapper.map.get_mut(&line) {
                    *mapped = LineAddr::new(mapped.index().wrapping_add(delta_lines));
                }
            }
        }
    }

    // 4. Rebuild the invalidate operands of every injected block from the
    //    plan via the patched mapper — clean blocks' operands are stale
    //    whenever their *victim's* line moved, so all of them are redone
    //    (O(plan), not O(program)).
    for (cue, victims) in &per_block_new {
        let block = &mut new_program.blocks_mut()[cue.index()];
        debug_assert_eq!(block.injected_prefix_len() as usize, victims.len());
        let mut idx = 0;
        block.map_invalidate_operands(|_| {
            let line = mapper.map(old_layout.line_of(victims[idx]));
            idx += 1;
            line
        });
    }

    Rewritten {
        program: new_program,
        layout: new_layout,
        mapper,
    }
}

/// A line operand that never matches a real cache line: invalidating it is
/// a no-op. Used to fill reserved-but-unassigned invalidate slots.
pub const NOOP_LINE: LineAddr = LineAddr::new(u64::MAX);

/// Replaces the invalidate operands of each listed block with the given
/// lines, padding unused slots with [`NOOP_LINE`].
///
/// The block sizes are unchanged (every invalidate instruction has the
/// same encoding size), so the program's layout is preserved — this is
/// how the final link-time analysis pass assigns victims against the
/// *final* layout without perturbing it.
///
/// # Panics
///
/// Panics if a block is assigned more lines than it has injected slots.
pub fn patch_invalidates(program: &mut Program, assignments: &HashMap<BlockId, Vec<LineAddr>>) {
    for block in program.blocks_mut() {
        let slots = block.injected_prefix_len() as usize;
        if slots == 0 {
            continue;
        }
        let lines = assignments.get(&block.id());
        let assigned = lines.map_or(0, Vec::len);
        assert!(
            assigned <= slots,
            "block {} has {} invalidate slots but {} assignments",
            block.id(),
            slots,
            assigned
        );
        let mut idx = 0;
        block.map_invalidate_operands(|_| {
            let line = match lines {
                Some(v) if idx < v.len() => v[idx],
                _ => NOOP_LINE,
            };
            idx += 1;
            line
        });
    }
}

/// Convenience: lays out `program` with `config` and applies an empty plan,
/// returning an identity [`Rewritten`]. Useful for baselines that must flow
/// through the same types as Ripple-optimized binaries.
pub fn identity_rewrite(program: &Program, config: &LayoutConfig) -> Rewritten {
    let layout = Layout::new(program, config);
    rewrite(program, &layout, &InjectionPlan::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::CodeKind;
    use crate::inst::{InstKind, INVALIDATE_BYTES};
    use crate::program::ProgramBuilder;

    fn linear_program(block_bytes: &[u8]) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let n = block_bytes.len();
        let blocks: Vec<BlockId> = (0..n).map(|_| b.add_block(main)).collect();
        for (i, (&blk, &sz)) in blocks.iter().zip(block_bytes).enumerate() {
            if i + 1 == n {
                if sz > 1 {
                    b.push_inst(blk, Instruction::other(sz - 1));
                }
                b.push_inst(blk, Instruction::ret());
            } else {
                b.push_inst(blk, Instruction::other(sz));
            }
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn empty_plan_is_identity() {
        let p = linear_program(&[32, 32, 16]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let rw = rewrite(&p, &layout, &InjectionPlan::new());
        assert_eq!(rw.program, p);
        assert_eq!(rw.layout, layout);
        for i in 0..4u64 {
            assert_eq!(rw.mapper.map(LineAddr::new(i)), LineAddr::new(i));
        }
    }

    #[test]
    fn injection_grows_block_and_shifts_layout() {
        let p = linear_program(&[32, 32, 16]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let mut plan = InjectionPlan::new();
        plan.push(Injection {
            cue: BlockId::new(0),
            victim: CodeLoc::new(BlockId::new(2), 0),
        });
        let rw = rewrite(&p, &layout, &plan);
        assert_eq!(
            rw.layout.block_size(BlockId::new(0)),
            32 + u32::from(INVALIDATE_BYTES)
        );
        assert_eq!(
            rw.layout.block_addr(BlockId::new(1)).get(),
            layout.block_addr(BlockId::new(1)).get() + u64::from(INVALIDATE_BYTES)
        );
    }

    #[test]
    fn invalidate_operand_is_new_layout_line() {
        let p = linear_program(&[60, 60, 60]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        // Victim: first byte of block 2 (old layout).
        let victim = CodeLoc::new(BlockId::new(2), 0);
        let old_line = layout.line_of(victim);
        let mut plan = InjectionPlan::new();
        plan.push(Injection {
            cue: BlockId::new(0),
            victim,
        });
        let rw = rewrite(&p, &layout, &plan);
        let new_line = rw.layout.line_of(victim);
        // Injection shifted block 2 by 7 bytes, may or may not move it to
        // another line, but operand must equal new layout's line.
        let inst = rw.program.block(BlockId::new(0)).instructions()[0];
        match inst.kind() {
            InstKind::Invalidate { line } => {
                assert_eq!(line, new_line);
                assert_eq!(rw.mapper.map(old_line), new_line);
            }
            other => panic!("expected invalidate, got {other:?}"),
        }
    }

    #[test]
    fn plan_deduplicates() {
        let mut plan = InjectionPlan::new();
        let inj = Injection {
            cue: BlockId::new(0),
            victim: CodeLoc::new(BlockId::new(1), 0),
        };
        plan.push(inj);
        plan.push(inj);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn plan_from_iterator() {
        let inj = Injection {
            cue: BlockId::new(0),
            victim: CodeLoc::new(BlockId::new(1), 0),
        };
        let plan: InjectionPlan = vec![inj, inj].into_iter().collect();
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
    }

    #[test]
    fn rewritten_program_still_validates() {
        let p = linear_program(&[32, 32, 16]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let mut plan = InjectionPlan::new();
        plan.push(Injection {
            cue: BlockId::new(1),
            victim: CodeLoc::new(BlockId::new(0), 0),
        });
        plan.push(Injection {
            cue: BlockId::new(1),
            victim: CodeLoc::new(BlockId::new(2), 4),
        });
        let rw = rewrite(&p, &layout, &plan);
        rw.program.validate().expect("rewritten program is valid");
        assert_eq!(rw.program.injected_instruction_count(), 2);
        // Original instruction stream is preserved.
        for (old, new) in p.blocks().iter().zip(rw.program.blocks()) {
            assert_eq!(old.instructions(), new.original_instructions());
        }
    }

    #[test]
    fn mapper_follows_shifted_lines() {
        // Two 64-byte blocks, line-aligned. Injecting 7 bytes into block 0
        // shifts block 1 into the next line region.
        let p = linear_program(&[64, 64]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let b1_old_line = layout.block_addr(BlockId::new(1)).line();
        let mut plan = InjectionPlan::new();
        plan.push(Injection {
            cue: BlockId::new(0),
            victim: CodeLoc::new(BlockId::new(1), 0),
        });
        let rw = rewrite(&p, &layout, &plan);
        let b1_new_line = rw.layout.block_addr(BlockId::new(1)).line();
        assert_eq!(rw.mapper.map(b1_old_line), b1_new_line);
    }

    #[test]
    fn identity_rewrite_matches_layout() {
        let p = linear_program(&[32, 16]);
        let rw = identity_rewrite(&p, &LayoutConfig::default());
        assert_eq!(rw.layout, Layout::new(&p, &LayoutConfig::default()));
        assert_eq!(rw.program, p);
    }

    /// Multi-function program: `funcs[i]` lists block byte sizes of f_i.
    fn multi_function_program(funcs: &[&[u8]]) -> Program {
        let mut b = ProgramBuilder::new();
        let mut entry = None;
        for (fi, blocks) in funcs.iter().enumerate() {
            let f = b.add_function(format!("f{fi}"), CodeKind::Static);
            entry.get_or_insert(f);
            let n = blocks.len();
            for (bi, &sz) in blocks.iter().enumerate() {
                let blk = b.add_block(f);
                if bi + 1 == n {
                    if sz > 1 {
                        b.push_inst(blk, Instruction::other(sz - 1));
                    }
                    b.push_inst(blk, Instruction::ret());
                } else {
                    b.push_inst(blk, Instruction::other(sz));
                }
            }
        }
        b.finish(entry.unwrap()).unwrap()
    }

    fn assert_incremental_matches_full(
        program: &Program,
        layout: &Layout,
        prev_plan: &InjectionPlan,
        plan: &InjectionPlan,
    ) {
        let prev = rewrite(program, layout, prev_plan);
        let incremental = rewrite_incremental(program, layout, plan, prev_plan, prev);
        let full = rewrite(program, layout, plan);
        assert_eq!(incremental.program, full.program, "programs diverge");
        assert_eq!(incremental.layout, full.layout, "layouts diverge");
        assert_eq!(incremental.mapper, full.mapper, "mappers diverge");
    }

    fn inj(cue: u32, victim_block: u32, offset: u32) -> Injection {
        Injection {
            cue: BlockId::new(cue),
            victim: CodeLoc::new(BlockId::new(victim_block), offset),
        }
    }

    #[test]
    fn incremental_matches_full_from_empty_plan() {
        // f0: blocks 0-1, f1: blocks 2-3, f2: block 4. Injecting into
        // block 2 dirties f1 only; f2 may shift if f1 outgrows its slack.
        let p = multi_function_program(&[&[40, 24], &[60, 60], &[64]]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let plan: InjectionPlan = [inj(2, 0, 0), inj(2, 4, 8), inj(0, 3, 0)]
            .into_iter()
            .collect();
        assert_incremental_matches_full(&p, &layout, &InjectionPlan::new(), &plan);
    }

    #[test]
    fn incremental_matches_full_between_plans() {
        let p = multi_function_program(&[&[40, 24], &[60, 60], &[64], &[30, 30]]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let prev: InjectionPlan = [inj(2, 0, 0), inj(0, 4, 0)].into_iter().collect();
        // Adds a cue, drops a cue, reorders one block's victims.
        let next: InjectionPlan = [inj(2, 4, 8), inj(2, 0, 0), inj(5, 1, 0)]
            .into_iter()
            .collect();
        assert_incremental_matches_full(&p, &layout, &prev, &next);
    }

    #[test]
    fn incremental_matches_full_when_plan_empties() {
        let p = multi_function_program(&[&[64, 64], &[32]]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let prev: InjectionPlan = [inj(0, 2, 0), inj(1, 0, 0)].into_iter().collect();
        assert_incremental_matches_full(&p, &layout, &prev, &InjectionPlan::new());
    }

    #[test]
    fn incremental_matches_full_when_plans_are_identical() {
        let p = multi_function_program(&[&[40, 24], &[60, 60]]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let plan: InjectionPlan = [inj(0, 2, 0), inj(3, 1, 0)].into_iter().collect();
        assert_incremental_matches_full(&p, &layout, &plan, &plan.clone());
    }

    #[test]
    fn incremental_falls_back_on_sub_line_alignment() {
        // function_align = 16 lets functions share cache lines, which the
        // splice rules cannot handle; the fallback must still be exact.
        let p = multi_function_program(&[&[10], &[10], &[10]]);
        let config = LayoutConfig {
            function_align: 16,
            ..LayoutConfig::default()
        };
        let layout = Layout::new(&p, &config);
        let prev_plan: InjectionPlan = [inj(0, 1, 0)].into_iter().collect();
        let plan: InjectionPlan = [inj(0, 1, 0), inj(2, 0, 0)].into_iter().collect();
        let prev = rewrite(&p, &layout, &prev_plan);
        let incremental = rewrite_incremental(&p, &layout, &plan, &prev_plan, prev);
        let full = rewrite(&p, &layout, &plan);
        assert_eq!(incremental.program, full.program);
        assert_eq!(incremental.layout, full.layout);
        assert_eq!(incremental.mapper, full.mapper);
    }
}
