//! Link-time injection of invalidation instructions.
//!
//! Ripple's analysis runs against a *profiled* layout (v0). Injection adds
//! instructions, which shifts addresses, producing a *rewritten* layout
//! (v1). Victim cache lines discovered in v0 must therefore be translated
//! to v1; [`LineMapper`] performs that translation by following the first
//! code byte of each v0 line to its new home.

use std::collections::HashMap;

use ripple_json::{object, FromJson, JsonError, ToJson, Value};

use crate::addr::LineAddr;
use crate::ids::{BlockId, CodeLoc};
use crate::inst::Instruction;
use crate::layout::{Layout, LayoutConfig};
use crate::program::Program;

/// One planned injection: when `cue` executes, invalidate the line holding
/// `victim` (a code location in the profiled layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Injection {
    /// Block that receives the invalidate instruction.
    pub cue: BlockId,
    /// First code byte of the victim line, in profiled-layout terms.
    pub victim: CodeLoc,
}

/// A set of injections to apply to a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionPlan {
    injections: Vec<Injection>,
}

impl InjectionPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an injection, deduplicating identical (cue, victim) pairs.
    pub fn push(&mut self, injection: Injection) {
        if !self.injections.contains(&injection) {
            self.injections.push(injection);
        }
    }

    /// The planned injections.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Number of static invalidate instructions this plan will insert.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }
}

impl ToJson for Injection {
    fn to_json(&self) -> Value {
        object([
            ("cue", self.cue.get().to_json()),
            ("victim_block", self.victim.block.get().to_json()),
            ("victim_offset", self.victim.offset.to_json()),
        ])
    }
}

impl FromJson for Injection {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Injection {
            cue: BlockId::new(u32::from_json(v.get("cue")?)?),
            victim: CodeLoc::new(
                BlockId::new(u32::from_json(v.get("victim_block")?)?),
                u32::from_json(v.get("victim_offset")?)?,
            ),
        })
    }
}

impl ToJson for InjectionPlan {
    fn to_json(&self) -> Value {
        object([("injections", self.injections.to_json())])
    }
}

impl FromJson for InjectionPlan {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let injections: Vec<Injection> = FromJson::from_json(v.get("injections")?)?;
        Ok(injections.into_iter().collect())
    }
}

impl FromIterator<Injection> for InjectionPlan {
    fn from_iter<I: IntoIterator<Item = Injection>>(iter: I) -> Self {
        let mut plan = InjectionPlan::new();
        for inj in iter {
            plan.push(inj);
        }
        plan
    }
}

impl Extend<Injection> for InjectionPlan {
    fn extend<I: IntoIterator<Item = Injection>>(&mut self, iter: I) {
        for inj in iter {
            self.push(inj);
        }
    }
}

/// Translates profiled-layout (v0) cache lines to rewritten-layout (v1)
/// cache lines.
///
/// A v0 line is followed through its first *code* byte: the block and
/// original-instruction offset holding that byte are located in v0, then
/// resolved against v1. Lines containing no code (alignment padding) map to
/// themselves.
#[derive(Debug, Clone, Default)]
pub struct LineMapper {
    map: HashMap<LineAddr, LineAddr>,
}

impl LineMapper {
    /// Builds a mapper between two layouts of the same program (same block
    /// ids; v1 may contain injected prefixes).
    pub fn new(program: &Program, old_layout: &Layout, new_layout: &Layout) -> Self {
        let mut map = HashMap::new();
        for block in program.blocks() {
            let id = block.id();
            let start = old_layout.block_addr(id);
            let size = u64::from(old_layout.block_size(id));
            if size == 0 {
                continue;
            }
            for line in crate::addr::lines_spanning(start, size) {
                // First code byte of this line within this block.
                let line_base = line.base_addr();
                let first_byte = line_base.max(start);
                // Only the block owning the line's first in-code byte
                // defines the mapping; earlier blocks win.
                map.entry(line).or_insert_with(|| {
                    let offset = (first_byte.get() - start.get()) as u32;
                    new_layout.line_of(CodeLoc::new(id, offset))
                });
            }
        }
        LineMapper { map }
    }

    /// Maps a v0 line to its v1 equivalent (identity for unknown lines).
    #[inline]
    pub fn map(&self, line: LineAddr) -> LineAddr {
        self.map.get(&line).copied().unwrap_or(line)
    }

    /// Number of mapped lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether any lines are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Maps every cache line of the text segment to the [`CodeLoc`] of its
/// first code byte under `layout`.
///
/// This is how analysis results (victim lines, found in a *profiled*
/// layout) are expressed in layout-independent terms so they survive the
/// relinking that injection causes. Lines spanning two blocks are owned by
/// the block holding their first code byte.
pub fn line_origins(program: &Program, layout: &Layout) -> HashMap<LineAddr, CodeLoc> {
    let mut map = HashMap::new();
    for block in program.blocks() {
        let id = block.id();
        let start = layout.block_addr(id);
        let size = u64::from(layout.block_size(id));
        if size == 0 {
            continue;
        }
        for line in crate::addr::lines_spanning(start, size) {
            let first_byte = line.base_addr().max(start);
            map.entry(line).or_insert_with(|| {
                let offset = (first_byte.get() - start.get()) as u32;
                CodeLoc::new(id, offset)
            });
        }
    }
    map
}

/// Result of [`rewrite`]: the rewritten program, its new layout, and the
/// v0→v1 line mapper.
#[derive(Debug, Clone)]
pub struct Rewritten {
    /// The program with invalidate instructions injected.
    pub program: Program,
    /// Layout of the rewritten program.
    pub layout: Layout,
    /// Maps profiled-layout lines to rewritten-layout lines.
    pub mapper: LineMapper,
}

/// Applies `plan` to `program`, relinks, and fixes up invalidate operands.
///
/// The operand of every injected instruction is the *rewritten-layout* line
/// of the victim, i.e. exactly what the simulated `invalidate` instruction
/// must evict at run time.
///
/// # Examples
///
/// ```
/// use ripple_program::{
///     rewrite, CodeKind, CodeLoc, Injection, InjectionPlan, Instruction, Layout,
///     LayoutConfig, ProgramBuilder,
/// };
///
/// let mut b = ProgramBuilder::new();
/// let main = b.add_function("main", CodeKind::Static);
/// let bb0 = b.add_block(main);
/// let bb1 = b.add_block(main);
/// b.push_inst(bb0, Instruction::other(60));
/// b.push_inst(bb1, Instruction::ret());
/// let program = b.finish(main)?;
/// let layout = Layout::new(&program, &LayoutConfig::default());
///
/// let mut plan = InjectionPlan::new();
/// plan.push(Injection { cue: bb1, victim: CodeLoc::new(bb0, 0) });
/// let rewritten = rewrite(&program, &layout, &plan);
/// assert_eq!(rewritten.program.injected_instruction_count(), 1);
/// # Ok::<(), ripple_program::ValidateProgramError>(())
/// ```
pub fn rewrite(program: &Program, old_layout: &Layout, plan: &InjectionPlan) -> Rewritten {
    let mut new_program = program.clone();

    // Group injections per cue block, preserving plan order.
    let mut per_block: HashMap<BlockId, Vec<CodeLoc>> = HashMap::new();
    for inj in plan.injections() {
        per_block.entry(inj.cue).or_default().push(inj.victim);
    }

    // Insert placeholder invalidates carrying the *old-layout* line; the
    // operands are remapped once the new layout is known.
    for (cue, victims) in &per_block {
        let instrs: Vec<Instruction> = victims
            .iter()
            .map(|&loc| Instruction::invalidate(old_layout.line_of(loc)))
            .collect();
        new_program.blocks_mut()[cue.index()].inject_prefix(instrs);
    }

    let new_layout = Layout::new(&new_program, old_layout.config());
    let mapper = LineMapper::new(program, old_layout, &new_layout);

    for block in new_program.blocks_mut() {
        block.map_invalidate_operands(|old_line| mapper.map(old_line));
    }

    Rewritten {
        program: new_program,
        layout: new_layout,
        mapper,
    }
}

/// A line operand that never matches a real cache line: invalidating it is
/// a no-op. Used to fill reserved-but-unassigned invalidate slots.
pub const NOOP_LINE: LineAddr = LineAddr::new(u64::MAX);

/// Replaces the invalidate operands of each listed block with the given
/// lines, padding unused slots with [`NOOP_LINE`].
///
/// The block sizes are unchanged (every invalidate instruction has the
/// same encoding size), so the program's layout is preserved — this is
/// how the final link-time analysis pass assigns victims against the
/// *final* layout without perturbing it.
///
/// # Panics
///
/// Panics if a block is assigned more lines than it has injected slots.
pub fn patch_invalidates(program: &mut Program, assignments: &HashMap<BlockId, Vec<LineAddr>>) {
    for block in program.blocks_mut() {
        let slots = block.injected_prefix_len() as usize;
        if slots == 0 {
            continue;
        }
        let lines = assignments.get(&block.id());
        let assigned = lines.map_or(0, Vec::len);
        assert!(
            assigned <= slots,
            "block {} has {} invalidate slots but {} assignments",
            block.id(),
            slots,
            assigned
        );
        let mut idx = 0;
        block.map_invalidate_operands(|_| {
            let line = match lines {
                Some(v) if idx < v.len() => v[idx],
                _ => NOOP_LINE,
            };
            idx += 1;
            line
        });
    }
}

/// Convenience: lays out `program` with `config` and applies an empty plan,
/// returning an identity [`Rewritten`]. Useful for baselines that must flow
/// through the same types as Ripple-optimized binaries.
pub fn identity_rewrite(program: &Program, config: &LayoutConfig) -> Rewritten {
    let layout = Layout::new(program, config);
    rewrite(program, &layout, &InjectionPlan::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::CodeKind;
    use crate::inst::{InstKind, INVALIDATE_BYTES};
    use crate::program::ProgramBuilder;

    fn linear_program(block_bytes: &[u8]) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let n = block_bytes.len();
        let blocks: Vec<BlockId> = (0..n).map(|_| b.add_block(main)).collect();
        for (i, (&blk, &sz)) in blocks.iter().zip(block_bytes).enumerate() {
            if i + 1 == n {
                if sz > 1 {
                    b.push_inst(blk, Instruction::other(sz - 1));
                }
                b.push_inst(blk, Instruction::ret());
            } else {
                b.push_inst(blk, Instruction::other(sz));
            }
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn empty_plan_is_identity() {
        let p = linear_program(&[32, 32, 16]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let rw = rewrite(&p, &layout, &InjectionPlan::new());
        assert_eq!(rw.program, p);
        assert_eq!(rw.layout, layout);
        for i in 0..4u64 {
            assert_eq!(rw.mapper.map(LineAddr::new(i)), LineAddr::new(i));
        }
    }

    #[test]
    fn injection_grows_block_and_shifts_layout() {
        let p = linear_program(&[32, 32, 16]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let mut plan = InjectionPlan::new();
        plan.push(Injection {
            cue: BlockId::new(0),
            victim: CodeLoc::new(BlockId::new(2), 0),
        });
        let rw = rewrite(&p, &layout, &plan);
        assert_eq!(
            rw.layout.block_size(BlockId::new(0)),
            32 + u32::from(INVALIDATE_BYTES)
        );
        assert_eq!(
            rw.layout.block_addr(BlockId::new(1)).get(),
            layout.block_addr(BlockId::new(1)).get() + u64::from(INVALIDATE_BYTES)
        );
    }

    #[test]
    fn invalidate_operand_is_new_layout_line() {
        let p = linear_program(&[60, 60, 60]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        // Victim: first byte of block 2 (old layout).
        let victim = CodeLoc::new(BlockId::new(2), 0);
        let old_line = layout.line_of(victim);
        let mut plan = InjectionPlan::new();
        plan.push(Injection {
            cue: BlockId::new(0),
            victim,
        });
        let rw = rewrite(&p, &layout, &plan);
        let new_line = rw.layout.line_of(victim);
        // Injection shifted block 2 by 7 bytes, may or may not move it to
        // another line, but operand must equal new layout's line.
        let inst = rw.program.block(BlockId::new(0)).instructions()[0];
        match inst.kind() {
            InstKind::Invalidate { line } => {
                assert_eq!(line, new_line);
                assert_eq!(rw.mapper.map(old_line), new_line);
            }
            other => panic!("expected invalidate, got {other:?}"),
        }
    }

    #[test]
    fn plan_deduplicates() {
        let mut plan = InjectionPlan::new();
        let inj = Injection {
            cue: BlockId::new(0),
            victim: CodeLoc::new(BlockId::new(1), 0),
        };
        plan.push(inj);
        plan.push(inj);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn plan_from_iterator() {
        let inj = Injection {
            cue: BlockId::new(0),
            victim: CodeLoc::new(BlockId::new(1), 0),
        };
        let plan: InjectionPlan = vec![inj, inj].into_iter().collect();
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
    }

    #[test]
    fn rewritten_program_still_validates() {
        let p = linear_program(&[32, 32, 16]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let mut plan = InjectionPlan::new();
        plan.push(Injection {
            cue: BlockId::new(1),
            victim: CodeLoc::new(BlockId::new(0), 0),
        });
        plan.push(Injection {
            cue: BlockId::new(1),
            victim: CodeLoc::new(BlockId::new(2), 4),
        });
        let rw = rewrite(&p, &layout, &plan);
        rw.program.validate().expect("rewritten program is valid");
        assert_eq!(rw.program.injected_instruction_count(), 2);
        // Original instruction stream is preserved.
        for (old, new) in p.blocks().iter().zip(rw.program.blocks()) {
            assert_eq!(old.instructions(), new.original_instructions());
        }
    }

    #[test]
    fn mapper_follows_shifted_lines() {
        // Two 64-byte blocks, line-aligned. Injecting 7 bytes into block 0
        // shifts block 1 into the next line region.
        let p = linear_program(&[64, 64]);
        let layout = Layout::new(&p, &LayoutConfig::default());
        let b1_old_line = layout.block_addr(BlockId::new(1)).line();
        let mut plan = InjectionPlan::new();
        plan.push(Injection {
            cue: BlockId::new(0),
            victim: CodeLoc::new(BlockId::new(1), 0),
        });
        let rw = rewrite(&p, &layout, &plan);
        let b1_new_line = rw.layout.block_addr(BlockId::new(1)).line();
        assert_eq!(rw.mapper.map(b1_old_line), b1_new_line);
    }

    #[test]
    fn identity_rewrite_matches_layout() {
        let p = linear_program(&[32, 16]);
        let rw = identity_rewrite(&p, &LayoutConfig::default());
        assert_eq!(rw.layout, Layout::new(&p, &LayoutConfig::default()));
        assert_eq!(rw.program, p);
    }
}
