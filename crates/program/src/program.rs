//! The [`Program`] container and its builder.

use crate::block::BasicBlock;
use crate::error::ValidateProgramError;
use crate::function::{CodeKind, Function};
use crate::ids::{BlockId, FuncId};
use crate::inst::{InstKind, Instruction};

/// Where control may go after a basic block finishes executing.
///
/// Indirect transfers carry no static target; the dynamic trace (a TIP
/// packet) resolves them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Successors {
    /// Conditional branch: taken goes to `taken`, not-taken to `not_taken`.
    Cond {
        /// Taken-path block.
        taken: BlockId,
        /// Fall-through block.
        not_taken: BlockId,
    },
    /// Unconditional direct jump.
    Jump(BlockId),
    /// Indirect jump; target known only dynamically.
    Indirect,
    /// Direct call: control enters `callee`'s entry block and later
    /// returns to `return_to`.
    Call {
        /// Entry block of the callee.
        callee: BlockId,
        /// Block executed after the callee returns.
        return_to: BlockId,
    },
    /// Indirect call returning to `return_to`.
    IndirectCall {
        /// Block executed after the callee returns.
        return_to: BlockId,
    },
    /// Return to the caller (resolved against the dynamic call stack).
    Return,
    /// No terminator: execution falls through to the next block.
    Fallthrough(BlockId),
}

/// A whole program: an arena of functions and basic blocks plus an entry
/// point.
///
/// # Examples
///
/// ```
/// use ripple_program::{CodeKind, Instruction, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// let main = b.add_function("main", CodeKind::Static);
/// let bb = b.add_block(main);
/// b.push_inst(bb, Instruction::other(4));
/// b.push_inst(bb, Instruction::ret());
/// let program = b.finish(main)?;
/// assert_eq!(program.num_blocks(), 1);
/// # Ok::<(), ripple_program::ValidateProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    functions: Vec<Function>,
    blocks: Vec<BasicBlock>,
    entry: FuncId,
}

impl Program {
    /// The program's entry function.
    #[inline]
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// The entry function's entry block.
    #[inline]
    pub fn entry_block(&self) -> BlockId {
        self.function(self.entry).entry()
    }

    /// Number of functions.
    #[inline]
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Looks up a basic block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// All functions in id order.
    #[inline]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// All blocks in id order.
    #[inline]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block following `id` within its function, if any.
    pub fn next_block_in_function(&self, id: BlockId) -> Option<BlockId> {
        let block = self.block(id);
        let func = self.function(block.func());
        func.blocks().get(block.pos_in_func() as usize + 1).copied()
    }

    /// Static successor summary of a block (who runs next).
    ///
    /// # Panics
    ///
    /// Panics on an invalid program (e.g. a fall-through off a function
    /// end); [`Program::validate`] rejects those.
    // The panics below are the documented contract for invalid programs,
    // which `Program::validate` (run by every constructor) rules out.
    #[allow(clippy::expect_used)]
    pub fn successors(&self, id: BlockId) -> Successors {
        let block = self.block(id);
        match block.terminator() {
            Some(InstKind::CondBranch { target }) => Successors::Cond {
                taken: target,
                not_taken: self
                    .next_block_in_function(id)
                    .expect("conditional branch requires a fall-through block"),
            },
            Some(InstKind::Jump { target }) => Successors::Jump(target),
            Some(InstKind::IndirectJump) => Successors::Indirect,
            Some(InstKind::Call { target }) => Successors::Call {
                callee: self.function(target).entry(),
                return_to: self
                    .next_block_in_function(id)
                    .expect("call requires a return-to block"),
            },
            Some(InstKind::IndirectCall) => Successors::IndirectCall {
                return_to: self
                    .next_block_in_function(id)
                    .expect("indirect call requires a return-to block"),
            },
            Some(InstKind::Return) => Successors::Return,
            Some(InstKind::Other) | Some(InstKind::Invalidate { .. }) | None => {
                Successors::Fallthrough(
                    self.next_block_in_function(id)
                        .expect("fall-through requires a next block"),
                )
            }
        }
    }

    /// Total static instruction count (including injected invalidations).
    pub fn static_instruction_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.len() as u64).sum()
    }

    /// Total static code size in bytes.
    pub fn static_code_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.size_bytes())).sum()
    }

    /// Count of injected invalidate instructions across the program.
    pub fn injected_instruction_count(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| u64::from(b.injected_prefix_len()))
            .sum()
    }

    /// Checks structural invariants. Called by
    /// [`ProgramBuilder::finish`]; also useful after deserialization.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateProgramError`] found.
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        if self.entry.index() >= self.functions.len() {
            return Err(ValidateProgramError::MissingEntry(self.entry));
        }
        for func in &self.functions {
            let Some(&last) = func.blocks().last() else {
                return Err(ValidateProgramError::EmptyFunction(func.id()));
            };
            for &bid in func.blocks() {
                let block = self.block(bid);
                if block.is_empty() {
                    return Err(ValidateProgramError::EmptyBlock(bid));
                }
                // Terminators only in final position.
                for inst in &block.instructions()[..block.len() - 1] {
                    if inst.kind().is_terminator() {
                        return Err(ValidateProgramError::MidBlockTerminator(bid));
                    }
                }
                match block.terminator() {
                    Some(InstKind::CondBranch { target }) => {
                        self.check_same_function(bid, target, func.id())?;
                        if self.next_block_in_function(bid).is_none() {
                            return Err(ValidateProgramError::FallthroughOffFunctionEnd(bid));
                        }
                    }
                    Some(InstKind::Jump { target }) => {
                        self.check_same_function(bid, target, func.id())?;
                    }
                    Some(InstKind::Call { target }) => {
                        if target.index() >= self.functions.len() {
                            return Err(ValidateProgramError::DanglingTarget { from: bid });
                        }
                        if self.next_block_in_function(bid).is_none() {
                            return Err(ValidateProgramError::FallthroughOffFunctionEnd(bid));
                        }
                    }
                    Some(InstKind::IndirectCall) => {
                        if self.next_block_in_function(bid).is_none() {
                            return Err(ValidateProgramError::FallthroughOffFunctionEnd(bid));
                        }
                    }
                    Some(InstKind::Return) | Some(InstKind::IndirectJump) => {}
                    _ => {
                        // Fall-through: fine except for the function's last block.
                        if bid == last {
                            return Err(ValidateProgramError::FallthroughOffFunctionEnd(bid));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_same_function(
        &self,
        from: BlockId,
        to: BlockId,
        func: FuncId,
    ) -> Result<(), ValidateProgramError> {
        if to.index() >= self.blocks.len() {
            return Err(ValidateProgramError::DanglingTarget { from });
        }
        if self.block(to).func() != func {
            return Err(ValidateProgramError::CrossFunctionBranch { from, to });
        }
        Ok(())
    }

    pub(crate) fn blocks_mut(&mut self) -> &mut [BasicBlock] {
        &mut self.blocks
    }
}

/// Incrementally constructs a [`Program`].
///
/// Functions and blocks are created first, instructions appended, and
/// [`ProgramBuilder::finish`] validates the result.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Function>,
    blocks: Vec<BasicBlock>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function with the given diagnostic name and code kind.
    pub fn add_function(&mut self, name: impl Into<String>, kind: CodeKind) -> FuncId {
        let id = FuncId::new(self.functions.len() as u32);
        self.functions.push(Function::new(id, name.into(), kind));
        id
    }

    /// Adds an empty block at the end of `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` was not created by this builder.
    pub fn add_block(&mut self, func: FuncId) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        let f = &mut self.functions[func.index()];
        let pos = f.blocks().len() as u32;
        f.push_block(id);
        self.blocks.push(BasicBlock::new(id, func, pos, Vec::new()));
        id
    }

    /// Appends an instruction to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn push_inst(&mut self, block: BlockId, inst: Instruction) {
        self.blocks[block.index()].push(inst);
    }

    /// Number of blocks created so far.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateProgramError`] if the program is structurally
    /// invalid (empty function/block, dangling branch target, possible
    /// fall-through off a function end, ...).
    pub fn finish(self, entry: FuncId) -> Result<Program, ValidateProgramError> {
        let program = Program {
            functions: self.functions,
            blocks: self.blocks,
            entry,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_function_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let helper = b.add_function("helper", CodeKind::Static);

        let m0 = b.add_block(main);
        let m1 = b.add_block(main);
        let m2 = b.add_block(main);
        let h0 = b.add_block(helper);

        b.push_inst(m0, Instruction::other(4));
        b.push_inst(m0, Instruction::cond_branch(m2));
        b.push_inst(m1, Instruction::call(helper));
        b.push_inst(m2, Instruction::ret());
        b.push_inst(h0, Instruction::other(8));
        b.push_inst(h0, Instruction::ret());

        b.finish(main).expect("valid program")
    }

    #[test]
    fn builder_produces_valid_program() {
        let p = two_function_program();
        assert_eq!(p.num_functions(), 2);
        assert_eq!(p.num_blocks(), 4);
        assert_eq!(p.entry_block(), BlockId::new(0));
    }

    #[test]
    fn successors_cond() {
        let p = two_function_program();
        match p.successors(BlockId::new(0)) {
            Successors::Cond { taken, not_taken } => {
                assert_eq!(taken, BlockId::new(2));
                assert_eq!(not_taken, BlockId::new(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn successors_call() {
        let p = two_function_program();
        match p.successors(BlockId::new(1)) {
            Successors::Call { callee, return_to } => {
                assert_eq!(callee, BlockId::new(3));
                assert_eq!(return_to, BlockId::new(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn successors_return() {
        let p = two_function_program();
        assert_eq!(p.successors(BlockId::new(2)), Successors::Return);
    }

    #[test]
    fn empty_function_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let _empty = b.add_function("empty", CodeKind::Static);
        let m0 = b.add_block(main);
        b.push_inst(m0, Instruction::ret());
        assert_eq!(
            b.finish(main),
            Err(ValidateProgramError::EmptyFunction(FuncId::new(1)))
        );
    }

    #[test]
    fn fallthrough_off_end_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let m0 = b.add_block(main);
        b.push_inst(m0, Instruction::other(4));
        assert_eq!(
            b.finish(main),
            Err(ValidateProgramError::FallthroughOffFunctionEnd(
                BlockId::new(0)
            ))
        );
    }

    #[test]
    fn cross_function_branch_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let other = b.add_function("other", CodeKind::Static);
        let m0 = b.add_block(main);
        let o0 = b.add_block(other);
        b.push_inst(m0, Instruction::jump(o0));
        b.push_inst(o0, Instruction::ret());
        assert_eq!(
            b.finish(main),
            Err(ValidateProgramError::CrossFunctionBranch { from: m0, to: o0 })
        );
    }

    #[test]
    fn mid_block_terminator_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let m0 = b.add_block(main);
        b.push_inst(m0, Instruction::ret());
        b.push_inst(m0, Instruction::other(4));
        assert_eq!(
            b.finish(main),
            Err(ValidateProgramError::MidBlockTerminator(m0))
        );
    }

    #[test]
    fn static_counts() {
        let p = two_function_program();
        assert_eq!(p.static_instruction_count(), 6);
        assert_eq!(p.injected_instruction_count(), 0);
        assert_eq!(p.static_code_bytes(), 4 + 4 + 5 + 1 + 8 + 1);
    }
}
