//! Program model, linker and rewriter for the Ripple reproduction.
//!
//! This crate provides the "binary" substrate everything else builds on:
//!
//! * a [`Program`] — functions, basic blocks and sized instructions with a
//!   validated control-flow structure;
//! * a [`Layout`] — the linker that assigns byte addresses and therefore
//!   determines which 64-byte I-cache lines every block occupies;
//! * [`rewrite`] — link-time injection of Ripple's `invalidate`
//!   instructions, including relinking and translating victim cache lines
//!   between the profiled and rewritten layouts via [`LineMapper`].
//!
//! # Examples
//!
//! Build a two-block program, lay it out, and inspect its cache lines:
//!
//! ```
//! use ripple_program::{CodeKind, Instruction, Layout, LayoutConfig, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.add_function("main", CodeKind::Static);
//! let head = b.add_block(main);
//! let tail = b.add_block(main);
//! b.push_inst(head, Instruction::other(60));
//! b.push_inst(head, Instruction::cond_branch(tail));
//! b.push_inst(tail, Instruction::ret());
//! let program = b.finish(main)?;
//!
//! let layout = Layout::new(&program, &LayoutConfig::default());
//! assert_eq!(layout.lines_of_block(head).count(), 1);
//! assert!(layout.block_addr(tail) > layout.block_addr(head));
//! # Ok::<(), ripple_program::ValidateProgramError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_debug_implementations)]

mod addr;
mod block;
mod error;
mod function;
mod ids;
mod inst;
mod layout;
mod program;
mod rewrite;

pub use addr::{lines_spanning, Addr, LineAddr, LineSpan, CACHE_LINE_BYTES, CACHE_LINE_SHIFT};
pub use block::BasicBlock;
pub use error::ValidateProgramError;
pub use function::{CodeKind, Function};
pub use ids::{BlockId, CodeLoc, FuncId};
pub use inst::{InstKind, Instruction, INVALIDATE_BYTES};
pub use layout::{Layout, LayoutConfig};
pub use program::{Program, ProgramBuilder, Successors};
pub use rewrite::{
    identity_rewrite, line_origins, patch_invalidates, rewrite, rewrite_incremental, Injection,
    InjectionPlan, LineMapper, Rewritten, NOOP_LINE,
};
