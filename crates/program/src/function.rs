//! Functions and code kinds.

use std::fmt;

use crate::ids::{BlockId, FuncId};

/// Provenance of a function's code, which determines whether Ripple may
/// rewrite it.
///
/// The paper's HHVM applications (drupal, mediawiki, wordpress) contain
/// just-in-time compiled regions whose instruction addresses are reused for
/// different basic blocks over time; Ripple cannot inject invalidations
/// there (§IV, "Replacement-Coverage"), which caps its coverage for those
/// applications. Kernel code is traced (Intel PT captures it) but also not
/// rewritten.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeKind {
    /// Ahead-of-time compiled application code; rewritable at link time.
    #[default]
    Static,
    /// Just-in-time compiled code; addresses are reused, not rewritable.
    Jit,
    /// Kernel code executed on behalf of the application; not rewritable.
    Kernel,
}

impl CodeKind {
    /// Whether Ripple may inject invalidation instructions into this code.
    #[inline]
    pub const fn is_rewritable(self) -> bool {
        matches!(self, CodeKind::Static)
    }
}

impl fmt::Display for CodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeKind::Static => write!(f, "static"),
            CodeKind::Jit => write!(f, "jit"),
            CodeKind::Kernel => write!(f, "kernel"),
        }
    }
}

/// A function: an ordered list of basic blocks, the first being its entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    id: FuncId,
    name: String,
    kind: CodeKind,
    blocks: Vec<BlockId>,
}

impl Function {
    pub(crate) fn new(id: FuncId, name: String, kind: CodeKind) -> Self {
        Function {
            id,
            name,
            kind,
            blocks: Vec::new(),
        }
    }

    /// This function's id.
    #[inline]
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The function's (diagnostic) name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function's code kind.
    #[inline]
    pub fn kind(&self) -> CodeKind {
        self.kind
    }

    /// The function's blocks, in layout order; the first is the entry.
    #[inline]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks; [`Program`](crate::Program)
    /// validation rejects such functions.
    #[inline]
    pub fn entry(&self) -> BlockId {
        self.blocks[0]
    }

    pub(crate) fn push_block(&mut self, block: BlockId) {
        self.blocks.push(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewritability() {
        assert!(CodeKind::Static.is_rewritable());
        assert!(!CodeKind::Jit.is_rewritable());
        assert!(!CodeKind::Kernel.is_rewritable());
    }

    #[test]
    fn function_accessors() {
        let mut f = Function::new(FuncId::new(1), "handler".to_string(), CodeKind::Static);
        f.push_block(BlockId::new(10));
        f.push_block(BlockId::new(11));
        assert_eq!(f.entry(), BlockId::new(10));
        assert_eq!(f.blocks().len(), 2);
        assert_eq!(f.name(), "handler");
        assert_eq!(f.kind().to_string(), "static");
    }
}
