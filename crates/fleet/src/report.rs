//! The `ripple.fleet_report.v1` schema: construction helpers and the
//! validator `validate-metrics` dispatches to.
//!
//! The report is **fully deterministic**: it contains per-epoch MPKI,
//! canary deltas, cache counters and shard health — never wall times.
//! Real timings flow through the attached [`ripple_obs`] recorder
//! instead; the report's `phases` section carries only the fixed
//! per-epoch phase counts, so two runs with equal config produce
//! byte-identical JSON at any thread count, warm or cold cache.

use ripple_json::{object, Value};

/// Schema identifier of a fleet report (see [`ripple::SchemaTag`] for
/// the workspace's schema roster).
pub const FLEET_SCHEMA: &str = ripple::SchemaTag::Fleet.as_str();

/// The per-epoch pipeline phases, in execution order.
pub const FLEET_PHASES: [&str; 4] = [
    "fleet.collect",
    "fleet.aggregate",
    "fleet.train",
    "fleet.rollout",
];

/// Canary decision vocabulary (one decision per service per epoch).
pub const FLEET_DECISIONS: [&str; 4] = ["promote", "rollback", "hold", "skipped"];

/// One epoch's observable outcome.
#[derive(Debug, Clone, Default)]
pub(crate) struct EpochReport {
    pub epoch: u32,
    pub drift: bool,
    pub fleet_mpki: f64,
    pub baseline_mpki: f64,
    pub canary_instances: u64,
    pub canary_deployed_mpki: f64,
    pub canary_candidate_mpki: f64,
    pub canary_delta_pct: f64,
    pub decisions: Vec<String>,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_invalidations: u64,
    pub shards_ok: u64,
    pub shards_failed: u64,
    pub dropped_packets: u64,
    pub resync_events: u64,
}

fn round6(x: f64) -> f64 {
    // Serialized figures are rounded so the textual report is stable
    // against float-formatting noise; 1e-6 MPKI is far below anything
    // the gate or a reader cares about.
    (x * 1e6).round() / 1e6
}

impl EpochReport {
    fn to_value(&self) -> Value {
        object([
            ("epoch", Value::UInt(u64::from(self.epoch))),
            ("drift", Value::Bool(self.drift)),
            ("fleet_mpki", Value::Float(round6(self.fleet_mpki))),
            ("baseline_mpki", Value::Float(round6(self.baseline_mpki))),
            (
                "canary",
                object([
                    ("instances", Value::UInt(self.canary_instances)),
                    (
                        "deployed_mpki",
                        Value::Float(round6(self.canary_deployed_mpki)),
                    ),
                    (
                        "candidate_mpki",
                        Value::Float(round6(self.canary_candidate_mpki)),
                    ),
                    ("delta_pct", Value::Float(round6(self.canary_delta_pct))),
                    (
                        "decisions",
                        Value::Array(
                            self.decisions
                                .iter()
                                .map(|d| Value::Str(d.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "artifact_cache",
                object([
                    ("hits", Value::UInt(self.cache_hits)),
                    ("misses", Value::UInt(self.cache_misses)),
                    ("invalidations", Value::UInt(self.cache_invalidations)),
                    (
                        "hit_rate",
                        Value::Float(if self.cache_hits + self.cache_misses == 0 {
                            0.0
                        } else {
                            round6(
                                self.cache_hits as f64
                                    / (self.cache_hits + self.cache_misses) as f64,
                            )
                        }),
                    ),
                ]),
            ),
            (
                "shard_health",
                object([
                    ("shards_ok", Value::UInt(self.shards_ok)),
                    ("shards_failed", Value::UInt(self.shards_failed)),
                    ("dropped_packets", Value::UInt(self.dropped_packets)),
                    ("resync_events", Value::UInt(self.resync_events)),
                ]),
            ),
        ])
    }
}

pub(crate) fn fleet_report(
    config: &crate::FleetConfig,
    services: u64,
    epochs: &[EpochReport],
) -> Value {
    object([
        ("schema", Value::Str(FLEET_SCHEMA.to_string())),
        ("command", Value::Str("fleet".to_string())),
        ("instances", Value::UInt(config.instances as u64)),
        ("epochs", Value::UInt(u64::from(config.epochs))),
        ("canary_pct", Value::UInt(u64::from(config.canary_pct))),
        ("seed", Value::UInt(config.seed)),
        ("services", Value::UInt(services)),
        (
            "epoch_reports",
            Value::Array(epochs.iter().map(EpochReport::to_value).collect()),
        ),
        (
            "phases",
            Value::Array(
                FLEET_PHASES
                    .iter()
                    .map(|&name| {
                        object([
                            ("name", Value::Str(name.to_string())),
                            ("count", Value::UInt(u64::from(config.epochs))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|f| f.as_u64())
        .map_err(|e| format!("{key}: {e}"))
}

fn field_finite(v: &Value, key: &str) -> Result<f64, String> {
    let x = v
        .get(key)
        .and_then(|f| f.as_f64())
        .map_err(|e| format!("{key}: {e}"))?;
    if !x.is_finite() {
        return Err(format!("{key} is not finite: {x}"));
    }
    Ok(x)
}

/// Validates a parsed `ripple.fleet_report.v1` document: schema and
/// command tags, per-epoch structure, decision vocabulary, cache
/// arithmetic (`hit_rate ∈ [0, 1]` and consistent with the counters),
/// shard-health bounds, and the fixed phase roster.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_fleet_report(report: &Value) -> Result<(), String> {
    let schema = report
        .get("schema")
        .and_then(|s| s.as_str())
        .map_err(|e| format!("schema: {e}"))?;
    if schema != FLEET_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?}, expected {FLEET_SCHEMA:?}"
        ));
    }
    let command = report
        .get("command")
        .and_then(|s| s.as_str())
        .map_err(|e| format!("command: {e}"))?;
    if command != "fleet" {
        return Err(format!("command {command:?} is not \"fleet\""));
    }
    let instances = field_u64(report, "instances")?;
    let epochs = field_u64(report, "epochs")?;
    let services = field_u64(report, "services")?;
    if services == 0 || services > instances {
        return Err(format!(
            "services ({services}) must be in [1, instances = {instances}]"
        ));
    }
    let entries = report
        .get("epoch_reports")
        .and_then(|e| e.as_array())
        .map_err(|e| format!("epoch_reports: {e}"))?;
    if entries.len() as u64 != epochs {
        return Err(format!(
            "epoch_reports has {} entries, header promises {epochs}",
            entries.len()
        ));
    }
    for (i, entry) in entries.iter().enumerate() {
        let epoch = field_u64(entry, "epoch")?;
        if epoch != i as u64 {
            return Err(format!("epoch_reports[{i}] is labelled epoch {epoch}"));
        }
        entry
            .get("drift")
            .and_then(|d| d.as_bool())
            .map_err(|e| format!("epoch {i} drift: {e}"))?;
        for key in ["fleet_mpki", "baseline_mpki"] {
            let x = field_finite(entry, key)?;
            if x < 0.0 {
                return Err(format!("epoch {i} {key} is negative: {x}"));
            }
        }
        let canary = entry.get("canary").map_err(|e| format!("epoch {i}: {e}"))?;
        let canary_instances = field_u64(canary, "instances")?;
        if canary_instances > instances {
            return Err(format!(
                "epoch {i} canaries {canary_instances} exceed the fleet ({instances})"
            ));
        }
        field_finite(canary, "deployed_mpki")?;
        field_finite(canary, "candidate_mpki")?;
        field_finite(canary, "delta_pct")?;
        let decisions = canary
            .get("decisions")
            .and_then(|d| d.as_array())
            .map_err(|e| format!("epoch {i} decisions: {e}"))?;
        if decisions.len() as u64 != services {
            return Err(format!(
                "epoch {i} has {} decisions for {services} services",
                decisions.len()
            ));
        }
        for d in decisions {
            let d = d.as_str().map_err(|e| format!("epoch {i} decision: {e}"))?;
            if !FLEET_DECISIONS.contains(&d) {
                return Err(format!("epoch {i} has unknown decision {d:?}"));
            }
        }
        let cache = entry
            .get("artifact_cache")
            .map_err(|e| format!("epoch {i}: {e}"))?;
        let hits = field_u64(cache, "hits")?;
        let misses = field_u64(cache, "misses")?;
        field_u64(cache, "invalidations")?;
        let hit_rate = field_finite(cache, "hit_rate")?;
        if !(0.0..=1.0).contains(&hit_rate) {
            return Err(format!("epoch {i} hit_rate {hit_rate} outside [0, 1]"));
        }
        if hits + misses == 0 && hit_rate != 0.0 {
            return Err(format!("epoch {i} hit_rate {hit_rate} with zero lookups"));
        }
        let health = entry
            .get("shard_health")
            .map_err(|e| format!("epoch {i}: {e}"))?;
        let ok = field_u64(health, "shards_ok")?;
        let failed = field_u64(health, "shards_failed")?;
        if ok + failed != instances {
            return Err(format!(
                "epoch {i} shard counts ({ok} ok + {failed} failed) don't cover {instances} instances"
            ));
        }
        field_u64(health, "dropped_packets")?;
        field_u64(health, "resync_events")?;
    }
    let phases = report
        .get("phases")
        .and_then(|p| p.as_array())
        .map_err(|e| format!("phases: {e}"))?;
    for name in FLEET_PHASES {
        let found = phases.iter().any(|p| {
            p.get("name")
                .and_then(|n| n.as_str())
                .map(|n| n == name)
                .unwrap_or(false)
                && p.get("count").and_then(|c| c.as_u64()).unwrap_or(0) >= 1
        });
        if !found {
            return Err(format!("required phase {name:?} missing or never ran"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FleetConfig;

    fn sample() -> Value {
        let config = FleetConfig {
            instances: 4,
            epochs: 2,
            ..FleetConfig::default()
        };
        let epochs: Vec<EpochReport> = (0..2)
            .map(|epoch| EpochReport {
                epoch,
                fleet_mpki: 12.5,
                baseline_mpki: 14.0,
                canary_instances: 2,
                decisions: vec![
                    "promote".into(),
                    "hold".into(),
                    "hold".into(),
                    "hold".into(),
                ],
                cache_hits: u64::from(epoch),
                cache_misses: 1,
                shards_ok: 4,
                ..EpochReport::default()
            })
            .collect();
        fleet_report(&config, 4, &epochs)
    }

    #[test]
    fn sample_report_round_trips_and_validates() {
        let report = sample();
        let text = report.to_pretty_string();
        let parsed = ripple_json::parse(&text).unwrap();
        validate_fleet_report(&parsed).unwrap();
    }

    #[test]
    fn validator_rejects_corruption() {
        let corrupt = |mutate: fn(&mut String), why: &str| {
            let mut text = sample().to_pretty_string();
            mutate(&mut text);
            let parsed = ripple_json::parse(&text).unwrap();
            assert!(validate_fleet_report(&parsed).is_err(), "{why}");
        };
        corrupt(
            |t| *t = t.replace("ripple.fleet_report.v1", "ripple.fleet_report.v2"),
            "wrong schema",
        );
        corrupt(
            |t| *t = t.replace("\"promote\"", "\"yolo\""),
            "bad decision",
        );
        corrupt(
            |t| *t = t.replace("\"fleet.rollout\"", "\"fleet.party\""),
            "missing phase",
        );
        corrupt(
            |t| *t = t.replace("\"shards_ok\": 4", "\"shards_ok\": 3"),
            "shard counts must cover the fleet",
        );
        corrupt(
            |t| *t = t.replacen("\"hit_rate\": 0.0", "\"hit_rate\": 1.5", 1),
            "hit rate outside [0,1]",
        );
    }
}
