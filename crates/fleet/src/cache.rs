//! The plan-artifact cache: reusing training outputs across epochs.
//!
//! Training an epoch produces a bundle of artifacts — the injection
//! plan, the relinked program/layout, the relinked layout's interned
//! fetch plan ([`PlanCache`]), and the temperature profile. All of them
//! are pure functions of (service binary layout, aggregated profile), so
//! undrifted epochs can reuse them wholesale. The cache keys on exactly
//! those two inputs and is *observation-neutral*: a warm cache changes
//! wall time, never a single reported number (the determinism tests
//! compare warm and cold reports).

use std::collections::HashMap;
use std::sync::Arc;

use ripple::CoverageStats;
use ripple_program::{InjectionPlan, Layout, LineAddr, Program, Rewritten};
use ripple_sim::{PlanCache, TemperatureMap};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_01b3;

fn fnv_u64(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for byte in value.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a layout's observable shape: every block's address and size,
/// in block order. Two layouts with equal hashes induce the same
/// line-access behaviour, so cached artifacts keyed on it are safe to
/// splice.
pub fn layout_hash(program: &Program, layout: &Layout) -> u64 {
    let mut h = FNV_OFFSET;
    for block in program.blocks() {
        h = fnv_u64(h, layout.block_addr(block.id()).get());
        h = fnv_u64(h, layout.block_size(block.id()) as u64);
    }
    h
}

/// Fingerprints an aggregated profile: the weighted line-access counts
/// (already sorted — the aggregator hands over a `BTreeMap`) plus the
/// training-trace length. Input drift changes the counts and therefore
/// the fingerprint; identical traffic re-produces it bit-for-bit.
pub fn profile_fingerprint<'c>(
    counts: impl IntoIterator<Item = (&'c LineAddr, &'c u64)>,
    train_blocks: u64,
) -> u64 {
    let mut h = FNV_OFFSET;
    for (line, count) in counts {
        h = fnv_u64(h, line.index());
        h = fnv_u64(h, *count);
    }
    fnv_u64(h, train_blocks)
}

/// Everything one training run produces, ready to redeploy.
#[derive(Debug, Clone)]
pub struct PlanArtifact {
    /// The injection plan at the configured threshold.
    pub plan: InjectionPlan,
    /// Coverage of the plan over the training windows.
    pub coverage: CoverageStats,
    /// The relinked program and layout the plan was applied to.
    pub rewritten: Rewritten,
    /// The relinked layout's interned fetch plan, spliced into rollout
    /// sessions via [`ripple_sim::SimSession::new_cached`].
    pub plan_cache: PlanCache,
    /// The temperature profile the plan was trained against.
    pub temperatures: TemperatureMap,
}

/// Cache-effectiveness counters (reported per epoch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to train.
    pub misses: u64,
    /// Entries dropped by explicit drift invalidation.
    pub invalidations: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ArtifactKey {
    service: usize,
    layout_hash: u64,
    fingerprint: u64,
}

/// Keyed store of [`PlanArtifact`]s with explicit drift invalidation.
#[derive(Debug, Default)]
pub struct PlanArtifactCache {
    entries: HashMap<ArtifactKey, Arc<PlanArtifact>>,
    stats: CacheStats,
}

impl PlanArtifactCache {
    /// An empty (cold) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the artifact for (service, layout, profile), counting a
    /// hit or miss.
    pub fn lookup(
        &mut self,
        service: usize,
        layout_hash: u64,
        fingerprint: u64,
    ) -> Option<Arc<PlanArtifact>> {
        let key = ArtifactKey {
            service,
            layout_hash,
            fingerprint,
        };
        match self.entries.get(&key) {
            Some(artifact) => {
                self.stats.hits += 1;
                Some(artifact.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly trained artifact.
    pub fn insert(
        &mut self,
        service: usize,
        layout_hash: u64,
        fingerprint: u64,
        artifact: Arc<PlanArtifact>,
    ) {
        let key = ArtifactKey {
            service,
            layout_hash,
            fingerprint,
        };
        self.entries.insert(key, artifact);
    }

    /// Drops every entry of `service` (the drift event: its profile is
    /// declared stale regardless of fingerprints). Returns how many
    /// entries were dropped; the count also accumulates into
    /// [`CacheStats::invalidations`].
    pub fn invalidate_service(&mut self, service: usize) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|key, _| key.service != service);
        let dropped = (before - self.entries.len()) as u64;
        self.stats.invalidations += dropped;
        dropped
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::{Layout, LayoutConfig};
    use ripple_workloads::{generate, AppSpec};

    fn dummy_artifact() -> Arc<PlanArtifact> {
        let app = generate(&AppSpec::tiny(1));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let plan = InjectionPlan::default();
        let rewritten = ripple_program::rewrite(&app.program, &layout, &plan);
        let trace = ripple_trace::BbTrace::default();
        let session = ripple_sim::SimSession::new(
            &rewritten.program,
            &rewritten.layout,
            &trace,
            ripple_sim::SimConfig::default(),
        );
        Arc::new(PlanArtifact {
            plan,
            coverage: CoverageStats::default(),
            plan_cache: session.plan_cache(),
            rewritten,
            temperatures: TemperatureMap::new(),
        })
    }

    #[test]
    fn lookup_hit_miss_and_invalidation_counting() {
        let mut cache = PlanArtifactCache::new();
        assert!(cache.lookup(0, 1, 2).is_none());
        cache.insert(0, 1, 2, dummy_artifact());
        assert!(cache.lookup(0, 1, 2).is_some());
        assert!(cache.lookup(0, 1, 3).is_none(), "fingerprint drift misses");
        assert!(cache.lookup(0, 9, 2).is_none(), "layout drift misses");
        assert!(cache.lookup(1, 1, 2).is_none(), "other service misses");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 4,
                invalidations: 0
            }
        );
        cache.insert(1, 1, 2, dummy_artifact());
        assert_eq!(cache.invalidate_service(0), 1);
        assert!(cache.lookup(0, 1, 2).is_none(), "invalidated");
        assert!(cache.lookup(1, 1, 2).is_some(), "other service survives");
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hashes_are_stable_and_input_sensitive() {
        let app = generate(&AppSpec::tiny(2));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        assert_eq!(
            layout_hash(&app.program, &layout),
            layout_hash(&app.program, &layout)
        );
        let counts =
            std::collections::BTreeMap::from([(LineAddr::new(1), 3u64), (LineAddr::new(2), 5u64)]);
        let fp = profile_fingerprint(counts.iter(), 100);
        assert_eq!(fp, profile_fingerprint(counts.iter(), 100));
        assert_ne!(fp, profile_fingerprint(counts.iter(), 101));
        let mut drifted = counts.clone();
        drifted.insert(LineAddr::new(2), 6);
        assert_ne!(fp, profile_fingerprint(drifted.iter(), 100));
    }
}
