//! The instance registry: which services exist, which instances run
//! them, and how much traffic each instance carries.

use ripple_program::{Layout, LayoutConfig, Program};
use ripple_workloads::{generate, AppSpec, ExecModel};

use crate::{mix, FleetConfig};

/// One service: a generated application shared by its instances.
#[derive(Debug)]
pub struct ServiceSpec {
    /// Service index within the fleet.
    pub id: usize,
    /// The specification the service was generated from.
    pub spec: AppSpec,
    /// The generated program (the binary every instance of this service
    /// runs).
    pub program: Program,
    /// The service's execution model.
    pub model: ExecModel,
    /// The baseline (pre-Ripple) layout.
    pub layout: Layout,
}

/// One app instance: a replica of a service with its own traffic weight
/// and input mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceSpec {
    /// Instance index within the fleet (stable across epochs; all
    /// aggregation iterates in this order, which is what makes the fleet
    /// report thread-count independent).
    pub id: usize,
    /// Index into [`FleetRegistry::services`].
    pub service: usize,
    /// Traffic weight: how many requests this instance serves relative
    /// to a weight-1 instance. Profile aggregation scales by it.
    pub weight: u64,
    /// The instance's input variant before any drift shift.
    pub base_variant: u32,
}

/// The fleet: services plus the instances running them.
#[derive(Debug)]
pub struct FleetRegistry {
    /// Generated services, indexed by [`InstanceSpec::service`].
    pub services: Vec<ServiceSpec>,
    /// Instances in id order.
    pub instances: Vec<InstanceSpec>,
}

impl FleetRegistry {
    /// Builds the registry for `config`: `min(4, instances)` services,
    /// instances assigned round-robin, weights and input variants mixed
    /// deterministically from the master seed.
    pub fn build(config: &FleetConfig) -> FleetRegistry {
        let num_services = config.instances.min(4);
        let services = (0..num_services)
            .map(|id| {
                let spec = AppSpec::fleet_service(id, config.seed);
                let app = generate(&spec);
                let layout = Layout::new(&app.program, &LayoutConfig::default());
                ServiceSpec {
                    id,
                    spec,
                    program: app.program,
                    model: app.model,
                    layout,
                }
            })
            .collect();
        let instances = (0..config.instances)
            .map(|id| InstanceSpec {
                id,
                service: id % num_services,
                weight: 1 + mix(config.seed, id as u64) % 4,
                base_variant: (id % 4) as u32,
            })
            .collect();
        FleetRegistry {
            services,
            instances,
        }
    }

    /// Instance ids of `service`, in id order.
    pub fn replicas_of(&self, service: usize) -> Vec<usize> {
        self.instances
            .iter()
            .filter(|i| i.service == service)
            .map(|i| i.id)
            .collect()
    }

    /// The canary set of `service`: the first `ceil(replicas ×
    /// canary_pct / 100)` replicas in id order — at least one whenever
    /// the percentage is positive and the service has replicas.
    pub fn canaries_of(&self, service: usize, canary_pct: u32) -> Vec<usize> {
        let replicas = self.replicas_of(service);
        if canary_pct == 0 || replicas.is_empty() {
            return Vec::new();
        }
        let n = (replicas.len() * canary_pct as usize).div_ceil(100).max(1);
        replicas[..n.min(replicas.len())].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_deterministic_and_covers_all_instances() {
        let cfg = FleetConfig {
            instances: 10,
            ..FleetConfig::default()
        };
        let a = FleetRegistry::build(&cfg);
        let b = FleetRegistry::build(&cfg);
        assert_eq!(a.services.len(), 4);
        assert_eq!(a.instances, b.instances);
        for inst in &a.instances {
            assert!(inst.service < a.services.len());
            assert!((1..=4).contains(&inst.weight));
        }
        let covered: usize = (0..a.services.len()).map(|s| a.replicas_of(s).len()).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn small_fleets_have_one_service_per_instance() {
        let cfg = FleetConfig {
            instances: 2,
            ..FleetConfig::default()
        };
        let r = FleetRegistry::build(&cfg);
        assert_eq!(r.services.len(), 2);
        assert_eq!(r.replicas_of(0), vec![0]);
        assert_eq!(r.replicas_of(1), vec![1]);
    }

    #[test]
    fn canary_set_is_a_leading_slice_and_never_empty_when_enabled() {
        let cfg = FleetConfig {
            instances: 9,
            ..FleetConfig::default()
        };
        let r = FleetRegistry::build(&cfg);
        // Service 0 has replicas {0, 4, 8}.
        assert_eq!(r.replicas_of(0), vec![0, 4, 8]);
        assert_eq!(r.canaries_of(0, 25), vec![0]);
        assert_eq!(r.canaries_of(0, 67), vec![0, 4, 8]);
        assert_eq!(r.canaries_of(0, 100), vec![0, 4, 8]);
        assert!(r.canaries_of(0, 0).is_empty());
        assert_eq!(r.canaries_of(0, 1), vec![0], "positive pct canaries ≥ 1");
    }
}
