//! # ripple-fleet: fleet-scale continuous profiling and canary rollout
//!
//! The paper's setting is a data center: profiles drift across inputs,
//! re-profiling is routine (§V-C), and a plan trained yesterday serves
//! traffic today. This crate turns the one-shot batch pipeline of the
//! `ripple` core into that service shape:
//!
//! 1. **Registry** — N app *instances* over S *services*
//!    ([`ripple_workloads::AppSpec::fleet_service`] variants), each with a
//!    traffic weight and an input variant that rotates on drift;
//! 2. **Collect** — every epoch, each instance emits a PT-style trace
//!    shard under a deterministic request-rate model, decoded through the
//!    lossy decoder so a poisoned shard degrades one instance, not the
//!    epoch;
//! 3. **Aggregate** — shards merge into per-service fleet profiles
//!    (weighted line-access counts feeding
//!    [`ripple::temperatures_from_counts`], and a concatenated training
//!    trace);
//! 4. **Train** — a [`PlanArtifactCache`] keyed by (service, layout hash,
//!    profile fingerprint) reuses [`InjectionPlan`] / relink / fetch-plan
//!    artifacts across undrifted epochs, with explicit invalidation on
//!    drift;
//! 5. **Rollout** — the fresh plan A/B-rolls through a canary fraction
//!    of each service's instances and is promoted (or rolled back) behind
//!    an MPKI regression gate.
//!
//! [`run_fleet`] drives the loop and emits a deterministic
//! `ripple.fleet_report.v1` JSON: byte-identical for a given
//! [`FleetConfig`] at any thread count, warm or cold cache.
//!
//! [`InjectionPlan`]: ripple_program::InjectionPlan

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_debug_implementations)]

mod aggregate;
mod cache;
mod registry;
mod report;
mod runner;

pub use aggregate::{merge_weighted_counts, Shard};
pub use cache::{layout_hash, profile_fingerprint, CacheStats, PlanArtifact, PlanArtifactCache};
pub use registry::{FleetRegistry, InstanceSpec, ServiceSpec};
pub use report::{validate_fleet_report, FLEET_PHASES, FLEET_SCHEMA};
pub use runner::{run_fleet, run_fleet_with_cache};

/// Configuration for one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of app instances across the fleet.
    pub instances: usize,
    /// Number of profile→train→rollout epochs to run.
    pub epochs: u32,
    /// Percentage of each service's instances that canary the fresh plan
    /// (0 disables canarying; any positive value canaries at least one
    /// instance per service).
    pub canary_pct: u32,
    /// Master seed; every derived seed (service shapes, instance inputs,
    /// traffic weights) mixes from it.
    pub seed: u64,
    /// Worker threads for shard collection and rollout simulation
    /// (`None` = all cores). A perf knob only: reports are byte-identical
    /// at any value.
    pub threads: Option<usize>,
    /// Per-shard execution budget in instructions.
    pub shard_instructions: u64,
    /// First epoch (0-based) at which every instance's input variant
    /// rotates — the profile-drift event. `None` = no drift.
    pub drift_epoch: Option<u32>,
    /// Promote the canary plan only if its canary MPKI is within this
    /// percentage above the deployed plan's canary MPKI.
    pub regression_gate_pct: f64,
    /// Deterministically corrupt this instance's packet stream every
    /// epoch (tests the poisoned-shard isolation path).
    pub poison_instance: Option<usize>,
    /// Attempts per shard-collection job before the instance is skipped
    /// for the epoch.
    pub retry_attempts: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            instances: 8,
            epochs: 3,
            canary_pct: 25,
            seed: 7,
            threads: None,
            shard_instructions: 12_000,
            drift_epoch: None,
            regression_gate_pct: 0.5,
            poison_instance: None,
            retry_attempts: 2,
        }
    }
}

impl FleetConfig {
    /// Checks every knob, returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] describing the offending field.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.instances == 0 || self.instances > 4096 {
            return Err(FleetError::Config(format!(
                "instances must be in [1, 4096], got {}",
                self.instances
            )));
        }
        if self.epochs == 0 || self.epochs > 1024 {
            return Err(FleetError::Config(format!(
                "epochs must be in [1, 1024], got {}",
                self.epochs
            )));
        }
        if self.canary_pct > 100 {
            return Err(FleetError::Config(format!(
                "canary-pct must be in [0, 100], got {}",
                self.canary_pct
            )));
        }
        if self.shard_instructions == 0 {
            return Err(FleetError::Config(
                "shard-instructions must be positive".to_string(),
            ));
        }
        if !self.regression_gate_pct.is_finite() || self.regression_gate_pct < 0.0 {
            return Err(FleetError::Config(format!(
                "regression gate must be a finite non-negative percentage, got {}",
                self.regression_gate_pct
            )));
        }
        if let Some(p) = self.poison_instance {
            if p >= self.instances {
                return Err(FleetError::Config(format!(
                    "poison-instance {} out of range (fleet has {} instances)",
                    p, self.instances
                )));
            }
        }
        Ok(())
    }
}

/// Errors from a fleet run.
#[derive(Debug)]
pub enum FleetError {
    /// A [`FleetConfig`] knob is out of range.
    Config(String),
    /// The training pipeline failed (wraps the core crate's error).
    Pipeline(ripple::Error),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Pipeline(e) => write!(f, "fleet training failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Config(_) => None,
            FleetError::Pipeline(e) => Some(e),
        }
    }
}

impl From<ripple::Error> for FleetError {
    fn from(e: ripple::Error) -> Self {
        FleetError::Pipeline(e)
    }
}

/// splitmix64 — the workspace's standard cheap seed mixer.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        FleetConfig::default().validate().unwrap();
    }

    #[test]
    fn config_rejects_bad_knobs() {
        let bad = |f: fn(&mut FleetConfig)| {
            let mut c = FleetConfig::default();
            f(&mut c);
            assert!(matches!(c.validate(), Err(FleetError::Config(_))), "{c:?}");
        };
        bad(|c| c.instances = 0);
        bad(|c| c.epochs = 0);
        bad(|c| c.canary_pct = 101);
        bad(|c| c.shard_instructions = 0);
        bad(|c| c.regression_gate_pct = f64::NAN);
        bad(|c| c.regression_gate_pct = -1.0);
        bad(|c| c.poison_instance = Some(99));
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix(0, 1), mix(0, 2));
    }
}
