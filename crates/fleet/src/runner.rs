//! The fleet epoch loop: collect → aggregate → train → rollout.

use std::collections::BTreeMap;
use std::sync::Arc;

use ripple::{
    effective_threads, run_jobs_retrying, run_jobs_settled, temperatures_from_counts, Job,
    RetryJob, Ripple, RippleConfig,
};
use ripple_json::Value;
use ripple_obs::{time_phase, Recorder};
use ripple_program::{rewrite, LineAddr};
use ripple_sim::{CacheGeometry, PolicyKind, SimConfig, SimSession};
use ripple_trace::{reconstruct_trace_lossy, record_trace_with_sync, BbTrace, DecodeOptions};
use ripple_workloads::{execute, InputConfig};

use crate::aggregate::{merge_weighted_counts, merged_training_trace, Shard};
use crate::cache::{layout_hash, profile_fingerprint, PlanArtifact, PlanArtifactCache};
use crate::registry::FleetRegistry;
use crate::report::{fleet_report, EpochReport};
use crate::{mix, FleetConfig, FleetError};

/// Training traces are capped so a big fleet's epoch stays fast; the cap
/// is generous relative to the per-shard budget, so small fleets train on
/// everything.
const MAX_TRAIN_BLOCKS: usize = 60_000;

/// Mid-stream sync cadence for shard packet streams: dense enough that a
/// poisoned span costs a fraction of the shard, not all of it.
const SHARD_SYNC_INTERVAL: u64 = 256;

/// The fleet's simulated L1I is small relative to the tiny generated
/// services, so plans have misses to remove (mirrors the core quickstart).
fn fleet_sim_config() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.l1i = CacheGeometry::new(2048, 4);
    cfg
}

/// Deterministically corrupts a mid-stream span (the poisoned-shard
/// fault model: a damaged but partially recoverable packet buffer).
fn poison(bytes: &mut [u8]) {
    let (start, end) = (bytes.len() / 4, bytes.len() / 2);
    for b in &mut bytes[start..end] {
        *b ^= 0xa5;
    }
}

/// One service's aggregated profile for an epoch.
struct ServiceProfile {
    counts: BTreeMap<LineAddr, u64>,
    train_trace: BbTrace,
    fingerprint: u64,
}

/// Per-instance rollout measurements.
struct InstanceOutcome {
    weight: u64,
    baseline_mpki: f64,
    deployed_mpki: f64,
    candidate_mpki: Option<f64>,
    is_canary: bool,
}

fn weighted_mean(pairs: impl Iterator<Item = (u64, f64)>) -> f64 {
    let (mut num, mut den) = (0.0_f64, 0u64);
    for (w, x) in pairs {
        num += w as f64 * x;
        den += w;
    }
    if den == 0 {
        0.0
    } else {
        num / den as f64
    }
}

/// Runs the full fleet loop with a cold [`PlanArtifactCache`], returning
/// the parsed `ripple.fleet_report.v1` document.
///
/// # Errors
///
/// Returns [`FleetError::Config`] for invalid knobs and
/// [`FleetError::Pipeline`] when training fails.
pub fn run_fleet(config: &FleetConfig, recorder: Arc<dyn Recorder>) -> Result<Value, FleetError> {
    let mut cache = PlanArtifactCache::new();
    run_fleet_with_cache(config, &mut cache, recorder)
}

/// [`run_fleet`] against a caller-owned artifact cache (a warm cache
/// skips training work but never changes the report — the determinism
/// tests compare warm and cold runs).
///
/// # Errors
///
/// See [`run_fleet`].
pub fn run_fleet_with_cache(
    config: &FleetConfig,
    cache: &mut PlanArtifactCache,
    recorder: Arc<dyn Recorder>,
) -> Result<Value, FleetError> {
    config.validate()?;
    let registry = FleetRegistry::build(config);
    let threads = effective_threads(config.threads);
    let sim_cfg = fleet_sim_config();
    let num_services = registry.services.len();
    let layout_hashes: Vec<u64> = registry
        .services
        .iter()
        .map(|svc| layout_hash(&svc.program, &svc.layout))
        .collect();
    let canaries: Vec<Vec<usize>> = (0..num_services)
        .map(|s| registry.canaries_of(s, config.canary_pct))
        .collect();

    let mut deployed: Vec<Option<Arc<PlanArtifact>>> = vec![None; num_services];
    let mut epoch_reports: Vec<EpochReport> = Vec::new();
    let mut prev_cache_stats = cache.stats();

    for epoch in 0..config.epochs {
        let drifted = config.drift_epoch.is_some_and(|d| epoch >= d);

        // ---- Collect: every instance emits and decodes one shard. ----
        let shards: Vec<Option<Shard>> = time_phase(&*recorder, "fleet.collect", || {
            let jobs: Vec<RetryJob<'_, Result<Shard, String>>> = registry
                .instances
                .iter()
                .map(|inst| -> RetryJob<'_, Result<Shard, String>> {
                    let inst = *inst;
                    let svc = &registry.services[inst.service];
                    let seed = config.seed;
                    let budget = config.shard_instructions;
                    let poisoned = config.poison_instance == Some(inst.id);
                    let variant = inst.base_variant + u32::from(drifted);
                    Box::new(move || {
                        let input = InputConfig::numbered(variant, mix(seed, inst.id as u64));
                        let trace = execute(&svc.program, &svc.model, input, budget);
                        let mut bytes = record_trace_with_sync(
                            &svc.program,
                            &svc.layout,
                            trace.iter(),
                            SHARD_SYNC_INTERVAL,
                        );
                        if poisoned {
                            poison(&mut bytes);
                        }
                        let lossy = reconstruct_trace_lossy(
                            &svc.program,
                            &svc.layout,
                            &bytes,
                            &DecodeOptions::default(),
                        )
                        .map_err(|e| e.to_string())?;
                        if lossy.trace.is_empty() {
                            return Err("shard decoded to an empty trace".to_string());
                        }
                        Ok(Shard {
                            instance: inst.id,
                            weight: inst.weight,
                            trace: lossy.trace,
                            health: lossy.health,
                        })
                    })
                })
                .collect();
            run_jobs_retrying(threads, "fleet.collect", config.retry_attempts, jobs)
                .into_iter()
                .map(|slot| match slot {
                    Ok(Ok(shard)) => Some(shard),
                    Ok(Err(_)) | Err(_) => None,
                })
                .collect()
        });
        let shards_ok = shards.iter().filter(|s| s.is_some()).count() as u64;
        let shards_failed = config.instances as u64 - shards_ok;
        let dropped_packets: u64 = shards
            .iter()
            .flatten()
            .map(|s| s.health.dropped_packets)
            .sum();
        let resync_events: u64 = shards
            .iter()
            .flatten()
            .map(|s| s.health.resync_events)
            .sum();

        // ---- Aggregate: weighted per-service fleet profiles. ----
        let profiles: Vec<ServiceProfile> = time_phase(&*recorder, "fleet.aggregate", || {
            (0..num_services)
                .map(|s| {
                    let svc_shards: Vec<&Shard> = shards
                        .iter()
                        .flatten()
                        .filter(|sh| registry.instances[sh.instance].service == s)
                        .collect();
                    let weighted: Vec<(&BbTrace, u64)> =
                        svc_shards.iter().map(|sh| (&sh.trace, sh.weight)).collect();
                    let counts = merge_weighted_counts(&registry.services[s].layout, &weighted);
                    let traces: Vec<&BbTrace> = svc_shards.iter().map(|sh| &sh.trace).collect();
                    let (train_trace, _taken) = merged_training_trace(&traces, MAX_TRAIN_BLOCKS);
                    let fingerprint = profile_fingerprint(counts.iter(), train_trace.len() as u64);
                    ServiceProfile {
                        counts,
                        train_trace,
                        fingerprint,
                    }
                })
                .collect()
        });

        // ---- Train: cached plan artifacts, trained on miss. ----
        let candidates: Vec<Option<Arc<PlanArtifact>>> =
            time_phase(&*recorder, "fleet.train", || {
                if config.drift_epoch == Some(epoch) {
                    // The drift event: declare every service's cached
                    // artifacts stale, whatever their fingerprints.
                    for s in 0..num_services {
                        cache.invalidate_service(s);
                    }
                }
                let mut candidates = Vec::with_capacity(num_services);
                for (s, profile) in profiles.iter().enumerate() {
                    if profile.train_trace.is_empty() {
                        candidates.push(None);
                        continue;
                    }
                    if let Some(art) = cache.lookup(s, layout_hashes[s], profile.fingerprint) {
                        candidates.push(Some(art));
                        continue;
                    }
                    let svc = &registry.services[s];
                    let mut rcfg = RippleConfig::default();
                    rcfg.threshold = 0.55;
                    rcfg.sim = sim_cfg.clone();
                    let ripple = Ripple::train_with_recorder(
                        &svc.program,
                        &svc.layout,
                        &profile.train_trace,
                        rcfg,
                        recorder.clone(),
                    )?;
                    let (plan, coverage) = ripple.plan()?;
                    let rewritten = rewrite(&svc.program, &svc.layout, &plan);
                    let plan_cache = SimSession::new(
                        &rewritten.program,
                        &rewritten.layout,
                        &profile.train_trace,
                        sim_cfg.clone(),
                    )
                    .plan_cache();
                    let art = Arc::new(PlanArtifact {
                        plan,
                        coverage,
                        rewritten,
                        plan_cache,
                        temperatures: temperatures_from_counts(profile.counts.clone()),
                    });
                    cache.insert(s, layout_hashes[s], profile.fingerprint, art.clone());
                    candidates.push(Some(art));
                }
                Ok::<_, FleetError>(candidates)
            })?;

        // ---- Rollout: baseline / deployed / canary runs, then the gate. ----
        let outcomes: Vec<Option<InstanceOutcome>> =
            time_phase(&*recorder, "fleet.rollout", || {
                let jobs: Vec<Job<'_, Option<InstanceOutcome>>> = registry
                    .instances
                    .iter()
                    .map(|inst| -> Job<'_, Option<InstanceOutcome>> {
                        let inst = *inst;
                        let svc = &registry.services[inst.service];
                        let shard = &shards[inst.id];
                        let deployed_art = deployed[inst.service].clone();
                        let candidate_art = candidates[inst.service].clone();
                        let is_canary = canaries[inst.service].contains(&inst.id);
                        let sim_cfg = sim_cfg.clone();
                        Box::new(move || {
                            let shard = shard.as_ref()?;
                            let run_artifact = |art: &PlanArtifact| {
                                SimSession::new_cached(
                                    &art.rewritten.program,
                                    &art.rewritten.layout,
                                    &shard.trace,
                                    sim_cfg.clone(),
                                    Some(&art.plan_cache),
                                )
                                .run(PolicyKind::LRU)
                                .mpki()
                            };
                            let baseline_mpki = SimSession::new(
                                &svc.program,
                                &svc.layout,
                                &shard.trace,
                                sim_cfg.clone(),
                            )
                            .run(PolicyKind::LRU)
                            .mpki();
                            let deployed_mpki = match &deployed_art {
                                Some(art) => run_artifact(art),
                                None => baseline_mpki,
                            };
                            let candidate_mpki = if is_canary {
                                candidate_art.as_ref().map(|art| {
                                    let same_as_deployed =
                                        deployed_art.as_ref().is_some_and(|d| Arc::ptr_eq(d, art));
                                    if same_as_deployed {
                                        deployed_mpki
                                    } else {
                                        run_artifact(art)
                                    }
                                })
                            } else {
                                None
                            };
                            Some(InstanceOutcome {
                                weight: inst.weight,
                                baseline_mpki,
                                deployed_mpki,
                                candidate_mpki,
                                is_canary,
                            })
                        })
                    })
                    .collect();
                run_jobs_settled(threads, "fleet.rollout", jobs)
                    .into_iter()
                    .map(|slot| slot.ok().flatten())
                    .collect()
            });

        // Fleet MPKI over this epoch's production runs: canaries serve
        // the candidate, everyone else the deployed plan (or baseline).
        let fleet_mpki = weighted_mean(outcomes.iter().flatten().map(|o| {
            let production = if o.is_canary {
                o.candidate_mpki.unwrap_or(o.deployed_mpki)
            } else {
                o.deployed_mpki
            };
            (o.weight, production)
        }));
        let baseline_mpki = weighted_mean(
            outcomes
                .iter()
                .flatten()
                .map(|o| (o.weight, o.baseline_mpki)),
        );
        let canary_pairs: Vec<&InstanceOutcome> = outcomes
            .iter()
            .flatten()
            .filter(|o| o.is_canary && o.candidate_mpki.is_some())
            .collect();
        let canary_deployed_mpki =
            weighted_mean(canary_pairs.iter().map(|o| (o.weight, o.deployed_mpki)));
        let canary_candidate_mpki = weighted_mean(
            canary_pairs
                .iter()
                .map(|o| (o.weight, o.candidate_mpki.unwrap_or(o.deployed_mpki))),
        );
        let canary_delta_pct = if canary_deployed_mpki > 0.0 {
            (canary_candidate_mpki - canary_deployed_mpki) / canary_deployed_mpki * 100.0
        } else {
            0.0
        };

        // The promote/rollback gate, per service.
        let mut decisions = Vec::with_capacity(num_services);
        for s in 0..num_services {
            let Some(candidate) = &candidates[s] else {
                decisions.push("skipped".to_string());
                continue;
            };
            if deployed[s]
                .as_ref()
                .is_some_and(|d| Arc::ptr_eq(d, candidate))
            {
                decisions.push("hold".to_string());
                continue;
            }
            let members: Vec<&InstanceOutcome> = canaries[s]
                .iter()
                .filter_map(|&id| outcomes[id].as_ref())
                .filter(|o| o.candidate_mpki.is_some())
                .collect();
            let promote = if members.is_empty() {
                // Canarying disabled (or every canary shard failed):
                // direct rollout.
                true
            } else {
                let dep = weighted_mean(members.iter().map(|o| (o.weight, o.deployed_mpki)));
                let cand = weighted_mean(
                    members
                        .iter()
                        .map(|o| (o.weight, o.candidate_mpki.unwrap_or(o.deployed_mpki))),
                );
                cand <= dep * (1.0 + config.regression_gate_pct / 100.0) + 1e-9
            };
            if promote {
                deployed[s] = Some(candidate.clone());
                decisions.push("promote".to_string());
            } else {
                decisions.push("rollback".to_string());
            }
        }

        let stats = cache.stats();
        epoch_reports.push(EpochReport {
            epoch,
            drift: drifted,
            fleet_mpki,
            baseline_mpki,
            canary_instances: outcomes.iter().flatten().filter(|o| o.is_canary).count() as u64,
            canary_deployed_mpki,
            canary_candidate_mpki,
            canary_delta_pct,
            decisions,
            cache_hits: stats.hits - prev_cache_stats.hits,
            cache_misses: stats.misses - prev_cache_stats.misses,
            cache_invalidations: stats.invalidations - prev_cache_stats.invalidations,
            shards_ok,
            shards_failed,
            dropped_packets,
            resync_events,
        });
        prev_cache_stats = stats;

        if recorder.enabled() {
            let entry = &epoch_reports[epoch as usize];
            recorder.add("fleet.epochs", 1);
            recorder.add("fleet.shards_ok", shards_ok);
            recorder.add("fleet.shards_failed", shards_failed);
            recorder.gauge("fleet.mpki", entry.fleet_mpki);
            recorder.gauge(
                "fleet.cache_hit_rate",
                if entry.cache_hits + entry.cache_misses == 0 {
                    0.0
                } else {
                    entry.cache_hits as f64 / (entry.cache_hits + entry.cache_misses) as f64
                },
            );
        }
    }

    Ok(fleet_report(config, num_services as u64, &epoch_reports))
}
