//! Shard aggregation: merging per-instance trace shards into one
//! per-service fleet profile.

use std::collections::BTreeMap;

use ripple::line_access_counts;
use ripple_program::{Layout, LineAddr};
use ripple_trace::{BbTrace, TraceHealth};

/// One instance's profile contribution for one epoch.
#[derive(Debug, Clone)]
pub struct Shard {
    /// The emitting instance's id.
    pub instance: usize,
    /// The instance's traffic weight (profile counts scale by it).
    pub weight: u64,
    /// The decoded trace.
    pub trace: BbTrace,
    /// Decode health (non-zero drop counters for poisoned shards).
    pub health: TraceHealth,
}

/// Merges shards into one weighted line-access profile: each shard's
/// [`line_access_counts`] scaled by its instance weight, summed.
///
/// The result is a `BTreeMap` so iteration order — and everything
/// derived from it, fingerprints included — is independent of shard
/// order and of `HashMap` hashing. Equivalent to profiling one big trace
/// with every shard repeated `weight` times (the `ripple-check` fleet
/// dimension holds this against that brute-force oracle).
pub fn merge_weighted_counts(
    layout: &Layout,
    shards: &[(&BbTrace, u64)],
) -> BTreeMap<LineAddr, u64> {
    let mut merged: BTreeMap<LineAddr, u64> = BTreeMap::new();
    for &(trace, weight) in shards {
        for (line, count) in line_access_counts(layout, trace) {
            *merged.entry(line).or_insert(0) += count * weight;
        }
    }
    merged
}

/// Concatenates shard traces (in the given order) into one training
/// trace, stopping before `max_blocks` is exceeded. Returns the trace
/// and how many shards made it in.
pub(crate) fn merged_training_trace(shards: &[&BbTrace], max_blocks: usize) -> (BbTrace, usize) {
    let mut merged = BbTrace::default();
    let mut taken = 0;
    for trace in shards {
        if !merged.is_empty() && merged.len() + trace.len() > max_blocks {
            break;
        }
        merged.extend_from(trace);
        taken += 1;
    }
    (merged, taken)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::{Layout, LayoutConfig};
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    #[test]
    fn merge_matches_physical_repetition_and_ignores_order() {
        let app = generate(&AppSpec::tiny(3));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let a = execute(&app.program, &app.model, InputConfig::numbered(0, 3), 5_000);
        let b = execute(&app.program, &app.model, InputConfig::numbered(1, 3), 5_000);

        let merged = merge_weighted_counts(&layout, &[(&a, 2), (&b, 3)]);
        let flipped = merge_weighted_counts(&layout, &[(&b, 3), (&a, 2)]);
        assert_eq!(merged, flipped);

        let mut big = BbTrace::default();
        for _ in 0..2 {
            big.extend_from(&a);
        }
        for _ in 0..3 {
            big.extend_from(&b);
        }
        let oracle: BTreeMap<LineAddr, u64> =
            line_access_counts(&layout, &big).into_iter().collect();
        assert_eq!(merged, oracle);
    }

    #[test]
    fn training_trace_respects_block_cap_but_never_starves() {
        let t1 = BbTrace::new(vec![ripple_program::BlockId::new(0); 30]);
        let t2 = BbTrace::new(vec![ripple_program::BlockId::new(1); 30]);
        let (merged, taken) = merged_training_trace(&[&t1, &t2], 40);
        assert_eq!((merged.len(), taken), (30, 1));
        // A single oversized shard is still taken whole: an empty
        // training trace would be worse than a long one.
        let (merged, taken) = merged_training_trace(&[&t1], 10);
        assert_eq!((merged.len(), taken), (30, 1));
    }
}
