//! Fleet determinism: the `ripple.fleet_report.v1` document is a pure
//! function of [`FleetConfig`] — thread counts and artifact-cache warmth
//! change wall time only.

use std::sync::Arc;

use ripple_fleet::{
    run_fleet, run_fleet_with_cache, validate_fleet_report, FleetConfig, PlanArtifactCache,
};
use ripple_json::Value;
use ripple_obs::NullRecorder;

fn small_config() -> FleetConfig {
    FleetConfig {
        instances: 6,
        epochs: 2,
        canary_pct: 25,
        seed: 7,
        shard_instructions: 6_000,
        ..FleetConfig::default()
    }
}

fn report_text(config: &FleetConfig) -> String {
    run_fleet(config, Arc::new(NullRecorder))
        .expect("fleet run")
        .to_pretty_string()
}

/// Drops every `artifact_cache` member, recursively: the one report
/// section where warm and cold caches legitimately differ.
fn strip_cache_counters(value: &mut Value) {
    match value {
        Value::Object(members) => {
            members.retain(|(key, _)| key != "artifact_cache");
            for (_, v) in members {
                strip_cache_counters(v);
            }
        }
        Value::Array(items) => {
            for v in items {
                strip_cache_counters(v);
            }
        }
        _ => {}
    }
}

#[test]
fn fleet_report_is_byte_identical_across_thread_counts() {
    let base = report_text(&small_config());
    for threads in [1, 4] {
        let cfg = FleetConfig {
            threads: Some(threads),
            ..small_config()
        };
        assert_eq!(report_text(&cfg), base, "diverged at {threads} threads");
    }
}

#[test]
fn warm_artifact_cache_is_observation_neutral() {
    let cfg = small_config();
    let mut cache = PlanArtifactCache::new();
    let cold = run_fleet_with_cache(&cfg, &mut cache, Arc::new(NullRecorder)).expect("cold run");
    assert!(!cache.is_empty(), "the cold run must populate the cache");
    // Same config against the now-warm cache: the "process restart"
    // scenario. Everything except the cache counters must be identical.
    let warm = run_fleet_with_cache(&cfg, &mut cache, Arc::new(NullRecorder)).expect("warm run");

    let epoch0 = &warm.get("epoch_reports").unwrap().as_array().unwrap()[0];
    let warm_hits = epoch0
        .get("artifact_cache")
        .unwrap()
        .get("hits")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(warm_hits > 0, "a warm cache must hit at epoch 0");

    let (mut cold, mut warm) = (cold, warm);
    strip_cache_counters(&mut cold);
    strip_cache_counters(&mut warm);
    assert_eq!(
        cold.to_pretty_string(),
        warm.to_pretty_string(),
        "cache warmth leaked into observable results"
    );
}

#[test]
fn undrifted_epochs_hit_the_cache_and_drift_invalidates() {
    let cfg = FleetConfig {
        epochs: 4,
        drift_epoch: Some(2),
        ..small_config()
    };
    let report = run_fleet(&cfg, Arc::new(NullRecorder)).expect("fleet run");
    validate_fleet_report(&report).expect("report validates");

    let epochs = report.get("epoch_reports").unwrap().as_array().unwrap();
    let cache_field = |i: usize, key: &str| -> u64 {
        epochs[i]
            .get("artifact_cache")
            .unwrap()
            .get(key)
            .unwrap()
            .as_u64()
            .unwrap()
    };
    let drift_flag = |i: usize| -> bool { epochs[i].get("drift").unwrap().as_bool().unwrap() };

    // Epoch 0: cold — all misses. Epoch 1: identical traffic — all hits.
    assert!(cache_field(0, "misses") > 0);
    assert_eq!(cache_field(0, "hits"), 0);
    assert!(cache_field(1, "hits") > 0);
    assert_eq!(cache_field(1, "misses"), 0);
    // Epoch 2: the drift event — explicit invalidation, then misses.
    assert!(cache_field(2, "invalidations") > 0);
    assert!(cache_field(2, "misses") > 0);
    assert_eq!(cache_field(2, "hits"), 0);
    // Epoch 3: drifted traffic is itself stable — hits again.
    assert!(cache_field(3, "hits") > 0);
    assert_eq!(
        (0..4).map(drift_flag).collect::<Vec<_>>(),
        [false, false, true, true]
    );
}

#[test]
fn poisoned_shard_degrades_one_instance_not_the_epoch() {
    let cfg = FleetConfig {
        poison_instance: Some(1),
        ..small_config()
    };
    let report = run_fleet(&cfg, Arc::new(NullRecorder)).expect("fleet run");
    validate_fleet_report(&report).expect("report validates");
    let epochs = report.get("epoch_reports").unwrap().as_array().unwrap();
    for (i, epoch) in epochs.iter().enumerate() {
        let health = epoch.get("shard_health").unwrap();
        let failed = health.get("shards_failed").unwrap().as_u64().unwrap();
        let ok = health.get("shards_ok").unwrap().as_u64().unwrap();
        let dropped = health.get("dropped_packets").unwrap().as_u64().unwrap();
        assert!(
            failed <= 1,
            "epoch {i}: poison must cost at most one instance"
        );
        assert!(ok >= 5, "epoch {i}: the rest of the fleet must survive");
        assert!(
            dropped > 0 || failed == 1,
            "epoch {i}: the poisoned shard must be visibly degraded"
        );
    }
}
