//! Property tests for the packet codec.

use proptest::prelude::*;
use ripple_program::Addr;
use ripple_trace::{decode_packets, Packet, PacketWriter, LONG_TNT_BITS};

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        Just(Packet::Psb),
        Just(Packet::End),
        (any::<u64>(), 1u8..=LONG_TNT_BITS).prop_map(|(bits, count)| Packet::Tnt {
            bits: bits & ((1u64 << count) - 1),
            count,
        }),
        any::<u64>().prop_map(|a| Packet::Tip { addr: Addr::new(a) }),
        any::<u64>().prop_map(|a| Packet::Fup { addr: Addr::new(a) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary packet sequences round-trip exactly.
    #[test]
    fn packets_roundtrip(packets in proptest::collection::vec(arb_packet(), 0..64)) {
        let mut w = PacketWriter::new();
        for &p in &packets {
            w.write(p);
        }
        let decoded = decode_packets(w.as_bytes()).expect("decodable");
        prop_assert_eq!(decoded, packets);
    }

    /// IP compression never inflates: repeated nearby addresses cost at
    /// most as much as the first full-width one.
    #[test]
    fn ip_compression_monotone(base in 0u64..u64::MAX / 2, deltas in proptest::collection::vec(0u64..4096, 1..20)) {
        let mut w_full = PacketWriter::new();
        w_full.write(Packet::Tip { addr: Addr::new(base) });
        let first = w_full.as_bytes().len();
        let mut w = PacketWriter::new();
        w.write(Packet::Tip { addr: Addr::new(base) });
        let mut prev = w.as_bytes().len();
        for d in deltas {
            w.write(Packet::Tip { addr: Addr::new(base.wrapping_add(d)) });
            let grew = w.as_bytes().len() - prev;
            prop_assert!(grew <= first, "{grew} > {first}");
            prev = w.as_bytes().len();
        }
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_packets(&bytes);
    }
}
