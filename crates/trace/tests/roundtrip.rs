//! Record → encode → decode → reconstruct round-trip tests over randomly
//! executed programs with every control-flow construct.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripple_program::{
    BlockId, CodeKind, Instruction, Layout, LayoutConfig, Program, ProgramBuilder, Successors,
};
use ripple_trace::{
    reconstruct_trace, reconstruct_trace_lossy, record_trace, record_trace_with_sync,
    DecodeOptions, ReconstructError,
};

/// Builds a program exercising conditionals, direct/indirect calls,
/// indirect jumps and returns.
///
/// Shape (main): b0 --cond--> {b1 fallthrough, b3 taken}
///   b1: call helper        -> b2
///   b2: indirect jump      -> b3 or b4
///   b3: indirect call      -> helper or leaf, returns to b4
///   b4: cond backward      -> b0 (taken) or b5
///   b5: ret
/// helper: h0 cond -> {h1, h2}; h1: ret; h2: ret
/// leaf: l0: ret
fn rich_program() -> (Program, Vec<BlockId>) {
    let mut b = ProgramBuilder::new();
    let main = b.add_function("main", CodeKind::Static);
    let helper = b.add_function("helper", CodeKind::Static);
    let leaf = b.add_function("leaf", CodeKind::Static);

    let m: Vec<BlockId> = (0..6).map(|_| b.add_block(main)).collect();
    let h: Vec<BlockId> = (0..3).map(|_| b.add_block(helper)).collect();
    let l0 = b.add_block(leaf);

    b.push_inst(m[0], Instruction::other(6));
    b.push_inst(m[0], Instruction::cond_branch(m[3]));
    b.push_inst(m[1], Instruction::call(helper));
    b.push_inst(m[2], Instruction::indirect_jump());
    b.push_inst(m[3], Instruction::indirect_call());
    b.push_inst(m[4], Instruction::cond_branch(m[0]));
    b.push_inst(m[5], Instruction::ret());

    b.push_inst(h[0], Instruction::other(2));
    b.push_inst(h[0], Instruction::cond_branch(h[2]));
    b.push_inst(h[1], Instruction::ret());
    b.push_inst(h[2], Instruction::ret());

    b.push_inst(l0, Instruction::ret());

    let program = b.finish(main).unwrap();
    let mut ids = m;
    ids.extend(h);
    ids.push(l0);
    (program, ids)
}

/// Executes the rich program with an rng deciding every dynamic outcome,
/// following the CFG exactly as a CPU would.
fn random_execution(program: &Program, seed: u64, max_blocks: usize) -> Vec<BlockId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut call_stack: Vec<BlockId> = Vec::new();
    let mut current = program.entry_block();
    let mut out = vec![current];
    // Indirect jump in m[2] may land on m[3] or m[4]; indirect call in m[3]
    // targets helper or leaf.
    let (_, ids) = rich_program();
    let (m3, m4) = (ids[3], ids[4]);
    let helper_entry = program.function(ripple_program::FuncId::new(1)).entry();
    let leaf_entry = program.function(ripple_program::FuncId::new(2)).entry();

    while out.len() < max_blocks {
        let next = match program.successors(current) {
            Successors::Cond { taken, not_taken } => {
                if rng.gen_bool(0.5) {
                    taken
                } else {
                    not_taken
                }
            }
            Successors::Jump(t) => t,
            Successors::Fallthrough(t) => t,
            Successors::Call { callee, return_to } => {
                call_stack.push(return_to);
                callee
            }
            Successors::IndirectCall { return_to } => {
                call_stack.push(return_to);
                if rng.gen_bool(0.5) {
                    helper_entry
                } else {
                    leaf_entry
                }
            }
            Successors::Indirect => {
                if rng.gen_bool(0.5) {
                    m3
                } else {
                    m4
                }
            }
            Successors::Return => match call_stack.pop() {
                Some(r) => r,
                None => break, // program finished
            },
        };
        out.push(next);
        current = next;
    }
    out
}

#[test]
fn roundtrip_deterministic_seeds() {
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    for seed in 0..50 {
        let executed = random_execution(&program, seed, 500);
        let bytes = record_trace(&program, &layout, executed.iter().copied());
        let decoded = reconstruct_trace(&program, &layout, &bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(decoded.blocks(), &executed[..], "seed {seed}");
    }
}

#[test]
fn roundtrip_truncated_executions() {
    // Stopping at every possible prefix length must still round-trip
    // (the FUP end marker pins the final block).
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let executed = random_execution(&program, 7, 120);
    for n in 1..=executed.len() {
        let prefix = &executed[..n];
        let bytes = record_trace(&program, &layout, prefix.iter().copied());
        let decoded = reconstruct_trace(&program, &layout, &bytes).unwrap();
        assert_eq!(decoded.blocks(), prefix, "prefix length {n}");
    }
}

#[test]
fn trace_is_compact() {
    // The whole point of PT-style tracing: bytes per executed block << 8.
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let executed = random_execution(&program, 3, 20_000);
    let bytes = record_trace(&program, &layout, executed.iter().copied());
    let per_block = bytes.len() as f64 / executed.len() as f64;
    assert!(per_block < 1.5, "trace too large: {per_block} B/block");
}

#[test]
fn empty_trace_roundtrips() {
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let bytes = record_trace(&program, &layout, std::iter::empty());
    let decoded = reconstruct_trace(&program, &layout, &bytes).unwrap();
    assert!(decoded.is_empty());
}

#[test]
fn single_block_trace_roundtrips() {
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let entry = program.entry_block();
    let bytes = record_trace(&program, &layout, std::iter::once(entry));
    let decoded = reconstruct_trace(&program, &layout, &bytes).unwrap();
    assert_eq!(decoded.blocks(), &[entry]);
}

#[test]
fn sync_points_roundtrip_through_strict_decoder() {
    // Mid-stream sync points must be transparent to the strict decoder,
    // at every interval (including ones that land on calls/returns so the
    // cleared call stack forces uncompressed return TIPs).
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let executed = random_execution(&program, 64, 400);
    for interval in [1, 2, 3, 7, 16, 64] {
        let bytes = record_trace_with_sync(&program, &layout, executed.iter().copied(), interval);
        let decoded = reconstruct_trace(&program, &layout, &bytes)
            .unwrap_or_else(|e| panic!("interval {interval}: {e}"));
        assert_eq!(decoded.blocks(), &executed[..], "interval {interval}");
    }
}

#[test]
fn lossy_decode_of_pristine_stream_is_lossless() {
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let executed = random_execution(&program, 5, 300);
    for bytes in [
        record_trace(&program, &layout, executed.iter().copied()),
        record_trace_with_sync(&program, &layout, executed.iter().copied(), 25),
    ] {
        let out = reconstruct_trace_lossy(&program, &layout, &bytes, &DecodeOptions::default())
            .expect("pristine stream");
        assert!(out.health.is_lossless(), "{:?}", out.health);
        assert_eq!(out.health.total_bytes, bytes.len() as u64);
        assert_eq!(out.trace.blocks(), &executed[..]);
    }
}

#[test]
fn lossy_decode_recovers_after_a_corrupt_span() {
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let executed = random_execution(&program, 64, 400);
    let mut bytes = record_trace_with_sync(&program, &layout, executed.iter().copied(), 8);
    // Stomp a span near the front with 0x0e (an illegal even header): the
    // strict decoder must reject the stream, the lossy one must skip the
    // span, rejoin at a later sync point, and decode through to the end.
    let span = 6..16.min(bytes.len());
    for i in span {
        bytes[i] = 0x0e;
    }
    assert!(reconstruct_trace(&program, &layout, &bytes).is_err());

    let out = reconstruct_trace_lossy(&program, &layout, &bytes, &DecodeOptions::default())
        .expect("lossy decode");
    assert!(out.health.dropped_packets > 0, "{:?}", out.health);
    assert!(out.health.resync_events > 0, "{:?}", out.health);
    assert!(!out.trace.is_empty());
    // After the last successful rejoin the walk runs to the true end of
    // the execution.
    assert_eq!(out.trace.blocks().last(), executed.last());

    // Pure function of the bytes: decoding again gives identical results.
    let again = reconstruct_trace_lossy(&program, &layout, &bytes, &DecodeOptions::default())
        .expect("lossy decode (second)");
    assert_eq!(out, again);
}

#[test]
fn lossy_decode_enforces_the_drop_ratio_bound() {
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let executed = random_execution(&program, 64, 400);
    let mut bytes = record_trace_with_sync(&program, &layout, executed.iter().copied(), 8);
    for i in 6..16.min(bytes.len()) {
        bytes[i] = 0x0e;
    }
    let strict_bound = DecodeOptions {
        max_drop_ratio: 0.0,
    };
    match reconstruct_trace_lossy(&program, &layout, &bytes, &strict_bound) {
        Err(ReconstructError::DropRatioExceeded {
            dropped_bytes,
            total_bytes,
        }) => {
            assert!(dropped_bytes > 0);
            assert_eq!(total_bytes, bytes.len() as u64);
        }
        other => panic!("expected DropRatioExceeded, got {other:?}"),
    }
}

#[test]
fn lossy_decode_survives_truncation() {
    let (program, _) = rich_program();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let executed = random_execution(&program, 9, 200);
    let bytes = record_trace_with_sync(&program, &layout, executed.iter().copied(), 10);
    for keep in 1..bytes.len() {
        let out =
            reconstruct_trace_lossy(&program, &layout, &bytes[..keep], &DecodeOptions::default())
                .unwrap_or_else(|e| panic!("keep {keep}: {e}"));
        // Every prefix must decode without panicking and account for
        // exactly the bytes it was given.
        assert_eq!(out.health.total_bytes, keep as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_random_seeds(seed in any::<u64>(), len in 1usize..400) {
        let (program, _) = rich_program();
        let layout = Layout::new(&program, &LayoutConfig::default());
        let executed = random_execution(&program, seed, len);
        let bytes = record_trace(&program, &layout, executed.iter().copied());
        let decoded = reconstruct_trace(&program, &layout, &bytes).unwrap();
        prop_assert_eq!(decoded.blocks(), &executed[..]);
    }

    #[test]
    fn corrupted_traces_never_panic(seed in any::<u64>(), flip in 0usize..64) {
        let (program, _) = rich_program();
        let layout = Layout::new(&program, &LayoutConfig::default());
        let executed = random_execution(&program, seed, 100);
        let mut bytes = record_trace(&program, &layout, executed.iter().copied());
        if !bytes.is_empty() {
            let idx = flip % bytes.len();
            bytes[idx] ^= 0xa5;
            // Any outcome is fine as long as it is an Ok or Err, not a panic.
            let _ = reconstruct_trace(&program, &layout, &bytes);
        }
    }
}
