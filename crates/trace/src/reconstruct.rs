//! Reconstructs the executed basic-block sequence from a packet stream.
//!
//! Two entry points share one CFG-walking segment decoder:
//!
//! * [`reconstruct_trace`] — strict: the first malformed packet or
//!   CFG-inconsistent event aborts with a [`ReconstructError`];
//! * [`reconstruct_trace_lossy`] — production-trace mode: unrecoverable
//!   spans are skipped up to the next PSB sync point, the loss is counted
//!   in a [`TraceHealth`], and decoding proceeds as long as the byte drop
//!   ratio stays under a configurable bound ([`DecodeOptions`]).

use std::error::Error;
use std::fmt;

use ripple_program::{Addr, BlockId, Layout, Program, Successors};

use crate::bbtrace::BbTrace;
use crate::packet::{DecodePacketError, Packet, PacketReader, HDR_PSB};

/// Errors produced while reconstructing a block trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReconstructError {
    /// The underlying packet stream is malformed.
    Packet(DecodePacketError),
    /// The stream does not begin with PSB + TIP.
    MissingSync,
    /// A TIP/FUP address does not point at the start of a basic block.
    NotABlockStart(Addr),
    /// A conditional branch or return needed a TNT bit but none remained.
    TntUnderflow,
    /// A compressed return carried a not-taken bit.
    BadReturnBit,
    /// A compressed return occurred with an empty call stack.
    StackUnderflow,
    /// An indirect transfer needed a TIP packet but found something else.
    ExpectedTip,
    /// The stream ended without FUP + END packets.
    MissingEnd,
    /// The FUP address disagrees with the reconstructed final block.
    FupMismatch {
        /// Block the decoder stopped at.
        decoded: Addr,
        /// Address the FUP packet reported.
        reported: Addr,
    },
    /// A mid-stream sync checkpoint names a different block than the one
    /// the CFG walk arrived at — the stream is corrupt.
    SyncMismatch {
        /// Block the decoder is standing on.
        decoded: Addr,
        /// Address the checkpoint TIP reported.
        reported: Addr,
    },
    /// Lossy decoding dropped more bytes than the configured bound allows
    /// (see [`DecodeOptions::max_drop_ratio`]).
    DropRatioExceeded {
        /// Bytes skipped as unrecoverable.
        dropped_bytes: u64,
        /// Total bytes in the stream.
        total_bytes: u64,
    },
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::Packet(e) => write!(f, "packet error: {e}"),
            ReconstructError::MissingSync => write!(f, "trace does not start with psb + tip"),
            ReconstructError::NotABlockStart(a) => {
                write!(f, "tip address {a} is not a basic block start")
            }
            ReconstructError::TntUnderflow => write!(f, "ran out of tnt bits"),
            ReconstructError::BadReturnBit => write!(f, "compressed return with not-taken bit"),
            ReconstructError::StackUnderflow => {
                write!(f, "compressed return with empty call stack")
            }
            ReconstructError::ExpectedTip => write!(f, "expected a tip packet"),
            ReconstructError::MissingEnd => write!(f, "trace ended without fup + end packets"),
            ReconstructError::FupMismatch { decoded, reported } => write!(
                f,
                "fup address {reported} disagrees with decoded final block {decoded}"
            ),
            ReconstructError::SyncMismatch { decoded, reported } => write!(
                f,
                "sync checkpoint {reported} disagrees with decoded block {decoded}"
            ),
            ReconstructError::DropRatioExceeded {
                dropped_bytes,
                total_bytes,
            } => write!(
                f,
                "lossy decode dropped {dropped_bytes} of {total_bytes} bytes, \
                 over the configured drop-ratio bound"
            ),
        }
    }
}

impl Error for ReconstructError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReconstructError::Packet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodePacketError> for ReconstructError {
    fn from(e: DecodePacketError) -> Self {
        ReconstructError::Packet(e)
    }
}

/// Options for [`reconstruct_trace_lossy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeOptions {
    /// Maximum tolerated fraction of the stream's bytes dropped as
    /// unrecoverable, `0.0..=1.0`. Decoding that drops more fails with
    /// [`ReconstructError::DropRatioExceeded`]. The default (`1.0`)
    /// accepts any amount of loss.
    pub max_drop_ratio: f64,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            max_drop_ratio: 1.0,
        }
    }
}

/// Loss accounting for one lossy reconstruction.
///
/// `dropped_*` counts bytes/packets the decoder skipped as unrecoverable;
/// `resync_events` counts how many times it had to re-join the stream at
/// a PSB sync point (the initial sync of a well-formed stream does not
/// count). A pristine stream decodes with an all-zero health (except
/// `total_bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceHealth {
    /// Total bytes in the encoded stream.
    pub total_bytes: u64,
    /// Bytes skipped as unrecoverable.
    pub dropped_bytes: u64,
    /// Packets lost inside skipped spans (plus one per span that failed
    /// mid-packet).
    pub dropped_packets: u64,
    /// Times the decoder re-synchronized at a mid-stream PSB after a
    /// corrupt span.
    pub resync_events: u64,
}

impl TraceHealth {
    /// Fraction of the stream's bytes that were dropped (`0.0` for an
    /// empty stream).
    pub fn drop_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.dropped_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Whether nothing was dropped and no resync was needed.
    pub fn is_lossless(&self) -> bool {
        self.dropped_bytes == 0 && self.dropped_packets == 0 && self.resync_events == 0
    }
}

/// Result of a [`reconstruct_trace_lossy`] call: the blocks that could be
/// recovered plus the loss accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossyReconstruction {
    /// The recovered block sequence (possibly with gaps where spans were
    /// dropped).
    pub trace: BbTrace,
    /// What was lost along the way.
    pub health: TraceHealth,
}

struct Cursor<'a> {
    reader: PacketReader<'a>,
    tnt_bits: u64,
    tnt_count: u8,
    tnt_consumed: u8,
    lookahead: Option<Packet>,
}

impl<'a> Cursor<'a> {
    fn new(reader: PacketReader<'a>) -> Self {
        Cursor {
            reader,
            tnt_bits: 0,
            tnt_count: 0,
            tnt_consumed: 0,
            lookahead: None,
        }
    }

    /// Byte offset the reader has consumed up to (including any packet
    /// held in the lookahead slot).
    fn position(&self) -> usize {
        self.reader.position()
    }

    fn next_packet(&mut self) -> Result<Option<Packet>, ReconstructError> {
        if let Some(p) = self.lookahead.take() {
            return Ok(Some(p));
        }
        Ok(self.reader.next_packet()?)
    }

    fn peek_packet(&mut self) -> Result<Option<Packet>, ReconstructError> {
        if self.lookahead.is_none() {
            self.lookahead = self.reader.next_packet()?;
        }
        Ok(self.lookahead)
    }

    fn has_pending_bit(&self) -> bool {
        self.tnt_consumed < self.tnt_count
    }

    /// Consumes the next TNT bit, pulling in the next TNT packet if the
    /// current one is exhausted.
    fn next_bit(&mut self) -> Result<bool, ReconstructError> {
        if !self.has_pending_bit() {
            match self.peek_packet()? {
                Some(Packet::Tnt { bits, count }) => {
                    self.lookahead = None;
                    self.tnt_bits = bits;
                    self.tnt_count = count;
                    self.tnt_consumed = 0;
                }
                _ => return Err(ReconstructError::TntUnderflow),
            }
        }
        let bit = (self.tnt_bits >> self.tnt_consumed) & 1 == 1;
        self.tnt_consumed += 1;
        Ok(bit)
    }

    /// Whether the next trace event is a TNT bit (as opposed to a TIP/FUP
    /// packet). Used to distinguish compressed from uncompressed returns.
    fn next_event_is_bit(&mut self) -> Result<bool, ReconstructError> {
        if self.has_pending_bit() {
            return Ok(true);
        }
        Ok(matches!(self.peek_packet()?, Some(Packet::Tnt { .. })))
    }

    fn next_tip(&mut self) -> Result<Addr, ReconstructError> {
        match self.next_packet()? {
            Some(Packet::Tip { addr }) => Ok(addr),
            _ => Err(ReconstructError::ExpectedTip),
        }
    }

    /// If all TNT bits are consumed and the next packet is FUP, returns its
    /// address (the trace-stop marker).
    fn at_fup(&mut self) -> Result<Option<Addr>, ReconstructError> {
        if self.has_pending_bit() {
            return Ok(None);
        }
        match self.peek_packet()? {
            Some(Packet::Fup { addr }) => Ok(Some(addr)),
            _ => Ok(None),
        }
    }

    /// Whether the decoder stands at a mid-stream sync point (all TNT
    /// bits consumed, next packet is PSB).
    fn at_sync(&mut self) -> Result<bool, ReconstructError> {
        if self.has_pending_bit() {
            return Ok(false);
        }
        Ok(matches!(self.peek_packet()?, Some(Packet::Psb)))
    }
}

/// How one segment walk ended.
enum SegmentEnd {
    /// END packet consumed; byte position just past it.
    Finished { end_pos: usize },
    /// Decode failed; `fail_pos` is the byte position the reader had
    /// consumed up to when the error was detected.
    Failed {
        error: ReconstructError,
        fail_pos: usize,
    },
}

/// Walks one sync-delimited segment starting at byte `start`, appending
/// recovered blocks to `blocks`.
///
/// A segment begins with PSB + TIP and runs until the FUP + END trailer
/// (`Finished`) or the first inconsistency (`Failed`). Mid-stream PSB +
/// TIP sync points (see `TraceRecorder::with_sync_interval`) are walked
/// through: the call stack is forgotten and decoding re-anchors at the
/// TIP's block.
fn decode_segment(
    program: &Program,
    layout: &Layout,
    bytes: &[u8],
    start: usize,
    blocks: &mut Vec<BlockId>,
) -> SegmentEnd {
    let mut cursor = Cursor::new(PacketReader::new(&bytes[start..]));
    let fail = |cursor: &Cursor<'_>, error: ReconstructError| SegmentEnd::Failed {
        error,
        fail_pos: start + cursor.position(),
    };
    macro_rules! try_seg {
        ($cursor:expr, $e:expr) => {
            match $e {
                Ok(v) => v,
                Err(error) => return fail($cursor, error),
            }
        };
    }

    // Empty stream: a complete, empty trace.
    if start == 0 && bytes.is_empty() {
        return SegmentEnd::Finished { end_pos: 0 };
    }
    if try_seg!(&cursor, cursor.next_packet()) != Some(Packet::Psb) {
        return fail(&cursor, ReconstructError::MissingSync);
    }
    let entry_addr = match cursor.next_tip() {
        Ok(a) => a,
        // A PSB not followed by a TIP is not a joinable sync point.
        Err(_) => return fail(&cursor, ReconstructError::MissingSync),
    };
    let mut current = try_seg!(&cursor, block_at(layout, entry_addr));
    blocks.push(current);
    let mut call_stack: Vec<BlockId> = Vec::new();

    loop {
        // Stop when the FUP marker names the block we are standing on.
        if let Some(fup_addr) = try_seg!(&cursor, cursor.at_fup()) {
            if layout.block_addr(current) == fup_addr {
                try_seg!(&cursor, cursor.next_packet()); // consume FUP
                break;
            }
            // Otherwise we are mid way through an unconditional chain that
            // continues below; only unconditional successors may follow
            // (anything needing an event will error out as corrupt).
        }
        // A mid-stream sync checkpoint re-states the block the recorder
        // was standing on. Packet-less transitions (jumps, fallthroughs,
        // direct calls) may separate the walk from the checkpoint — walk
        // them forward first; anything needing an event means the stream
        // is corrupt. Both sides forget their call stacks at the
        // checkpoint.
        if try_seg!(&cursor, cursor.at_sync()) {
            try_seg!(&cursor, cursor.next_packet()); // consume PSB
            let addr = match cursor.next_tip() {
                Ok(a) => a,
                Err(_) => return fail(&cursor, ReconstructError::MissingSync),
            };
            // Quiet chains never revisit a block (that would be an
            // event-less infinite loop), so the program's block count
            // bounds the walk even on corrupt input.
            let mut remaining = program.num_blocks();
            while layout.block_addr(current) != addr {
                let next = match program.successors(current) {
                    Successors::Jump(t) => t,
                    Successors::Fallthrough(t) => t,
                    Successors::Call { callee, return_to } => {
                        call_stack.push(return_to);
                        callee
                    }
                    _ => {
                        return fail(
                            &cursor,
                            ReconstructError::SyncMismatch {
                                decoded: layout.block_addr(current),
                                reported: addr,
                            },
                        )
                    }
                };
                blocks.push(next);
                current = next;
                if remaining == 0 {
                    return fail(
                        &cursor,
                        ReconstructError::SyncMismatch {
                            decoded: layout.block_addr(current),
                            reported: addr,
                        },
                    );
                }
                remaining -= 1;
            }
            call_stack.clear();
            continue;
        }
        let next = match program.successors(current) {
            Successors::Cond { taken, not_taken } => {
                if try_seg!(&cursor, cursor.next_bit()) {
                    taken
                } else {
                    not_taken
                }
            }
            Successors::Jump(target) => target,
            Successors::Fallthrough(next) => next,
            Successors::Call { callee, return_to } => {
                call_stack.push(return_to);
                callee
            }
            Successors::IndirectCall { return_to } => {
                call_stack.push(return_to);
                let addr = try_seg!(&cursor, cursor.next_tip());
                try_seg!(&cursor, block_at(layout, addr))
            }
            Successors::Indirect => {
                let addr = try_seg!(&cursor, cursor.next_tip());
                try_seg!(&cursor, block_at(layout, addr))
            }
            Successors::Return => {
                if try_seg!(&cursor, cursor.next_event_is_bit()) {
                    if !try_seg!(&cursor, cursor.next_bit()) {
                        return fail(&cursor, ReconstructError::BadReturnBit);
                    }
                    match call_stack.pop() {
                        Some(b) => b,
                        None => return fail(&cursor, ReconstructError::StackUnderflow),
                    }
                } else {
                    let addr = try_seg!(&cursor, cursor.next_tip());
                    call_stack.pop();
                    try_seg!(&cursor, block_at(layout, addr))
                }
            }
        };
        blocks.push(next);
        current = next;
    }

    match try_seg!(&cursor, cursor.next_packet()) {
        Some(Packet::End) => SegmentEnd::Finished {
            end_pos: start + cursor.position(),
        },
        _ => fail(&cursor, ReconstructError::MissingEnd),
    }
}

/// Reconstructs the executed block sequence from an encoded packet stream.
///
/// Inverse of [`record_trace`](crate::record_trace): walks the program's
/// CFG, consuming one TNT bit per conditional branch (and per compressed
/// return) and one TIP per indirect transfer, stopping at the FUP marker.
/// Mid-stream sync points (from
/// [`TraceRecorder::with_sync_interval`](crate::TraceRecorder::with_sync_interval))
/// are decoded transparently.
///
/// # Errors
///
/// Returns a [`ReconstructError`] if the stream is malformed or
/// inconsistent with the program. For best-effort decoding of damaged
/// streams, use [`reconstruct_trace_lossy`].
pub fn reconstruct_trace(
    program: &Program,
    layout: &Layout,
    bytes: &[u8],
) -> Result<BbTrace, ReconstructError> {
    let mut blocks = Vec::new();
    match decode_segment(program, layout, bytes, 0, &mut blocks) {
        SegmentEnd::Finished { .. } => Ok(BbTrace::new(blocks)),
        SegmentEnd::Failed { error, .. } => Err(error),
    }
}

/// Best-effort reconstruction of a damaged packet stream.
///
/// Decodes like [`reconstruct_trace`], but on the first inconsistency
/// the decoder scans forward for the next PSB sync point, counts the
/// skipped span into a [`TraceHealth`], and rejoins the stream there
/// (which is why [`record_trace_with_sync`](crate::record_trace_with_sync)
/// exists: without mid-stream sync points a corrupt prefix loses the
/// whole stream). Decoding is a pure function of the bytes — the same
/// damaged input always yields the same blocks and the same health.
///
/// # Errors
///
/// Returns [`ReconstructError::DropRatioExceeded`] when more than
/// `options.max_drop_ratio` of the stream's bytes had to be dropped.
/// All other damage is absorbed into the health counters.
pub fn reconstruct_trace_lossy(
    program: &Program,
    layout: &Layout,
    bytes: &[u8],
    options: &DecodeOptions,
) -> Result<LossyReconstruction, ReconstructError> {
    let mut health = TraceHealth {
        total_bytes: bytes.len() as u64,
        ..TraceHealth::default()
    };
    let mut blocks = Vec::new();
    let mut pos = 0usize;
    let mut first_join = true;
    while pos < bytes.len() {
        let Some(sync) = find_psb(bytes, pos) else {
            drop_span(&mut health, bytes, pos, bytes.len());
            break;
        };
        if sync > pos {
            drop_span(&mut health, bytes, pos, sync);
        }
        let initial_join = first_join && sync == 0;
        first_join = false;
        if !initial_join {
            health.resync_events += 1;
        }
        match decode_segment(program, layout, bytes, sync, &mut blocks) {
            SegmentEnd::Finished { end_pos } => {
                // Anything after END is not part of this trace.
                if end_pos < bytes.len() {
                    drop_span(&mut health, bytes, end_pos, bytes.len());
                }
                pos = bytes.len();
            }
            SegmentEnd::Failed { fail_pos, .. } => {
                // The packet that broke is gone; whatever lies between
                // here and the next sync point is counted when the next
                // iteration scans over it.
                health.dropped_packets += 1;
                pos = fail_pos.max(sync + 1);
            }
        }
    }
    if health.drop_ratio() > options.max_drop_ratio {
        return Err(ReconstructError::DropRatioExceeded {
            dropped_bytes: health.dropped_bytes,
            total_bytes: health.total_bytes,
        });
    }
    Ok(LossyReconstruction {
        trace: BbTrace::new(blocks),
        health,
    })
}

/// Finds the next PSB header byte at or after `from`.
///
/// A payload byte can collide with the PSB header; a false positive just
/// produces a short failed segment and the scan continues, so collisions
/// cost time, not correctness.
fn find_psb(bytes: &[u8], from: usize) -> Option<usize> {
    bytes[from.min(bytes.len())..]
        .iter()
        .position(|&b| b == HDR_PSB)
        .map(|i| from + i)
}

/// Counts a skipped byte span into `health`, estimating how many packets
/// it contained (a span that stops parsing mid-way counts the broken
/// packet too).
fn drop_span(health: &mut TraceHealth, bytes: &[u8], from: usize, to: usize) {
    health.dropped_bytes += (to - from) as u64;
    let span = &bytes[from..to];
    let mut pos = 0usize;
    while pos < span.len() {
        let mut reader = PacketReader::new(&span[pos..]);
        match reader.next_packet() {
            Ok(Some(_)) => pos += reader.position(),
            Ok(None) => break,
            Err(_) => pos += reader.position().max(1),
        }
        health.dropped_packets += 1;
    }
}

fn block_at(layout: &Layout, addr: Addr) -> Result<BlockId, ReconstructError> {
    let loc = layout
        .loc_of_addr(addr)
        .ok_or(ReconstructError::NotABlockStart(addr))?;
    if loc.offset != 0 || layout.block_addr(loc.block) != addr {
        return Err(ReconstructError::NotABlockStart(addr));
    }
    Ok(loc.block)
}
