//! Reconstructs the executed basic-block sequence from a packet stream.

use std::error::Error;
use std::fmt;

use ripple_program::{Addr, BlockId, Layout, Program, Successors};

use crate::bbtrace::BbTrace;
use crate::packet::{DecodePacketError, Packet, PacketReader};

/// Errors produced while reconstructing a block trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReconstructError {
    /// The underlying packet stream is malformed.
    Packet(DecodePacketError),
    /// The stream does not begin with PSB + TIP.
    MissingSync,
    /// A TIP/FUP address does not point at the start of a basic block.
    NotABlockStart(Addr),
    /// A conditional branch or return needed a TNT bit but none remained.
    TntUnderflow,
    /// A compressed return carried a not-taken bit.
    BadReturnBit,
    /// A compressed return occurred with an empty call stack.
    StackUnderflow,
    /// An indirect transfer needed a TIP packet but found something else.
    ExpectedTip,
    /// The stream ended without FUP + END packets.
    MissingEnd,
    /// The FUP address disagrees with the reconstructed final block.
    FupMismatch {
        /// Block the decoder stopped at.
        decoded: Addr,
        /// Address the FUP packet reported.
        reported: Addr,
    },
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::Packet(e) => write!(f, "packet error: {e}"),
            ReconstructError::MissingSync => write!(f, "trace does not start with psb + tip"),
            ReconstructError::NotABlockStart(a) => {
                write!(f, "tip address {a} is not a basic block start")
            }
            ReconstructError::TntUnderflow => write!(f, "ran out of tnt bits"),
            ReconstructError::BadReturnBit => write!(f, "compressed return with not-taken bit"),
            ReconstructError::StackUnderflow => {
                write!(f, "compressed return with empty call stack")
            }
            ReconstructError::ExpectedTip => write!(f, "expected a tip packet"),
            ReconstructError::MissingEnd => write!(f, "trace ended without fup + end packets"),
            ReconstructError::FupMismatch { decoded, reported } => write!(
                f,
                "fup address {reported} disagrees with decoded final block {decoded}"
            ),
        }
    }
}

impl Error for ReconstructError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReconstructError::Packet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodePacketError> for ReconstructError {
    fn from(e: DecodePacketError) -> Self {
        ReconstructError::Packet(e)
    }
}

struct Cursor<'a> {
    reader: PacketReader<'a>,
    tnt_bits: u64,
    tnt_count: u8,
    tnt_consumed: u8,
    lookahead: Option<Packet>,
}

impl<'a> Cursor<'a> {
    fn new(reader: PacketReader<'a>) -> Self {
        Cursor {
            reader,
            tnt_bits: 0,
            tnt_count: 0,
            tnt_consumed: 0,
            lookahead: None,
        }
    }

    fn next_packet(&mut self) -> Result<Option<Packet>, ReconstructError> {
        if let Some(p) = self.lookahead.take() {
            return Ok(Some(p));
        }
        Ok(self.reader.next_packet()?)
    }

    fn peek_packet(&mut self) -> Result<Option<Packet>, ReconstructError> {
        if self.lookahead.is_none() {
            self.lookahead = self.reader.next_packet()?;
        }
        Ok(self.lookahead)
    }

    fn has_pending_bit(&self) -> bool {
        self.tnt_consumed < self.tnt_count
    }

    /// Consumes the next TNT bit, pulling in the next TNT packet if the
    /// current one is exhausted.
    fn next_bit(&mut self) -> Result<bool, ReconstructError> {
        if !self.has_pending_bit() {
            match self.peek_packet()? {
                Some(Packet::Tnt { bits, count }) => {
                    self.lookahead = None;
                    self.tnt_bits = bits;
                    self.tnt_count = count;
                    self.tnt_consumed = 0;
                }
                _ => return Err(ReconstructError::TntUnderflow),
            }
        }
        let bit = (self.tnt_bits >> self.tnt_consumed) & 1 == 1;
        self.tnt_consumed += 1;
        Ok(bit)
    }

    /// Whether the next trace event is a TNT bit (as opposed to a TIP/FUP
    /// packet). Used to distinguish compressed from uncompressed returns.
    fn next_event_is_bit(&mut self) -> Result<bool, ReconstructError> {
        if self.has_pending_bit() {
            return Ok(true);
        }
        Ok(matches!(self.peek_packet()?, Some(Packet::Tnt { .. })))
    }

    fn next_tip(&mut self) -> Result<Addr, ReconstructError> {
        match self.next_packet()? {
            Some(Packet::Tip { addr }) => Ok(addr),
            _ => Err(ReconstructError::ExpectedTip),
        }
    }

    /// If all TNT bits are consumed and the next packet is FUP, returns its
    /// address (the trace-stop marker).
    fn at_fup(&mut self) -> Result<Option<Addr>, ReconstructError> {
        if self.has_pending_bit() {
            return Ok(None);
        }
        match self.peek_packet()? {
            Some(Packet::Fup { addr }) => Ok(Some(addr)),
            _ => Ok(None),
        }
    }
}

/// Reconstructs the executed block sequence from an encoded packet stream.
///
/// Inverse of [`record_trace`](crate::record_trace): walks the program's
/// CFG, consuming one TNT bit per conditional branch (and per compressed
/// return) and one TIP per indirect transfer, stopping at the FUP marker.
///
/// # Errors
///
/// Returns a [`ReconstructError`] if the stream is malformed or
/// inconsistent with the program.
pub fn reconstruct_trace(
    program: &Program,
    layout: &Layout,
    bytes: &[u8],
) -> Result<BbTrace, ReconstructError> {
    let mut cursor = Cursor::new(PacketReader::new(bytes));
    // Empty trace: no packets at all.
    if cursor.peek_packet()?.is_none() {
        return Ok(BbTrace::new(Vec::new()));
    }
    if cursor.next_packet()? != Some(Packet::Psb) {
        return Err(ReconstructError::MissingSync);
    }
    let entry_addr = cursor.next_tip()?;
    let mut current = block_at(layout, entry_addr)?;
    let mut blocks = vec![current];
    let mut call_stack: Vec<BlockId> = Vec::new();

    loop {
        // Stop when the FUP marker names the block we are standing on.
        if let Some(fup_addr) = cursor.at_fup()? {
            if layout.block_addr(current) == fup_addr {
                cursor.next_packet()?; // consume FUP
                break;
            }
            // Otherwise we are mid way through an unconditional chain that
            // continues below; only unconditional successors may follow
            // (anything needing an event will error out as corrupt).
        }
        let next = match program.successors(current) {
            Successors::Cond { taken, not_taken } => {
                if cursor.next_bit()? {
                    taken
                } else {
                    not_taken
                }
            }
            Successors::Jump(target) => target,
            Successors::Fallthrough(next) => next,
            Successors::Call { callee, return_to } => {
                call_stack.push(return_to);
                callee
            }
            Successors::IndirectCall { return_to } => {
                call_stack.push(return_to);
                block_at(layout, cursor.next_tip()?)?
            }
            Successors::Indirect => block_at(layout, cursor.next_tip()?)?,
            Successors::Return => {
                if cursor.next_event_is_bit()? {
                    if !cursor.next_bit()? {
                        return Err(ReconstructError::BadReturnBit);
                    }
                    call_stack.pop().ok_or(ReconstructError::StackUnderflow)?
                } else {
                    let addr = cursor.next_tip()?;
                    call_stack.pop();
                    block_at(layout, addr)?
                }
            }
        };
        blocks.push(next);
        current = next;
    }

    match cursor.next_packet()? {
        Some(Packet::End) => Ok(BbTrace::new(blocks)),
        _ => Err(ReconstructError::MissingEnd),
    }
}

fn block_at(layout: &Layout, addr: Addr) -> Result<BlockId, ReconstructError> {
    let loc = layout
        .loc_of_addr(addr)
        .ok_or(ReconstructError::NotABlockStart(addr))?;
    if loc.offset != 0 || layout.block_addr(loc.block) != addr {
        return Err(ReconstructError::NotABlockStart(addr));
    }
    Ok(loc.block)
}
