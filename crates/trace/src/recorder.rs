//! Records an executed basic-block sequence as a packet stream.

use ripple_program::{Addr, BlockId, Layout, Program, Successors};

use crate::packet::{Packet, PacketWriter, LONG_TNT_BITS};

/// Records control flow as compressed trace packets, mimicking a hardware
/// tracer like Intel PT.
///
/// The recorder is fed each executed block in order via
/// [`TraceRecorder::record_block`]; it derives the minimal packet stream
/// (TNT bits, TIPs for indirect transfers, compressed returns) by
/// consulting the static CFG.
///
/// # Examples
///
/// See [`record_trace`] for the one-shot convenience entry point.
#[derive(Debug)]
pub struct TraceRecorder<'p> {
    program: &'p Program,
    layout: &'p Layout,
    writer: PacketWriter,
    pending_bits: u64,
    pending_count: u8,
    call_stack: Vec<BlockId>,
    current: Option<BlockId>,
    started: bool,
    sync_interval: u64,
    blocks_since_sync: u64,
}

impl<'p> TraceRecorder<'p> {
    /// Creates a recorder for one execution of `program` under `layout`.
    pub fn new(program: &'p Program, layout: &'p Layout) -> Self {
        TraceRecorder {
            program,
            layout,
            writer: PacketWriter::new(),
            pending_bits: 0,
            pending_count: 0,
            call_stack: Vec::new(),
            current: None,
            started: false,
            sync_interval: 0,
            blocks_since_sync: 0,
        }
    }

    /// Emits a mid-stream sync point (PSB + full TIP) roughly every
    /// `interval` recorded blocks (`0` — the default — means never).
    ///
    /// A sync point carries everything a decoder needs to join the stream
    /// cold: the PSB resets IP compression, the TIP names the block the
    /// recorder is standing on with its full address, and the recorder
    /// forgets its call stack so every return until the stack rebuilds is
    /// emitted as an uncompressed TIP rather than a stack-relative bit.
    /// The checkpoint is purely additive — every transition keeps its
    /// normal event — so the strict decoder uses it only as a consistency
    /// check, while a lossy decoder (see `reconstruct_trace_lossy`) uses
    /// it to rejoin the stream after a corrupt span.
    pub fn with_sync_interval(mut self, interval: u64) -> Self {
        self.sync_interval = interval;
        self
    }

    fn push_bit(&mut self, bit: bool) {
        self.pending_bits |= u64::from(bit) << self.pending_count;
        self.pending_count += 1;
        if self.pending_count == LONG_TNT_BITS {
            self.flush_bits();
        }
    }

    fn flush_bits(&mut self) {
        if self.pending_count > 0 {
            self.writer.write(Packet::Tnt {
                bits: self.pending_bits,
                count: self.pending_count,
            });
            self.pending_bits = 0;
            self.pending_count = 0;
        }
    }

    fn emit_tip(&mut self, addr: Addr) {
        self.flush_bits();
        self.writer.write(Packet::Tip { addr });
    }

    /// Records that `block` executed next.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a legal successor of the previously
    /// recorded block (the execution being traced must follow the CFG).
    pub fn record_block(&mut self, block: BlockId) {
        let Some(prev) = self.current else {
            // First block: synchronize and emit the entry address.
            self.writer.write(Packet::Psb);
            self.emit_tip(self.layout.block_addr(block));
            self.current = Some(block);
            self.started = true;
            self.blocks_since_sync = 0;
            return;
        };
        if self.sync_interval > 0 {
            self.blocks_since_sync += 1;
            if self.blocks_since_sync >= self.sync_interval {
                // Checkpoint: re-state the block we are standing on with a
                // full-address TIP, then record the transition as usual (no
                // event is replaced, so nothing is lost if the checkpoint
                // is skipped). Both sides forget the call stack, so returns
                // are emitted uncompressed until it rebuilds.
                self.flush_bits();
                self.call_stack.clear();
                self.writer.write(Packet::Psb);
                self.emit_tip(self.layout.block_addr(prev));
                self.blocks_since_sync = 0;
            }
        }
        match self.program.successors(prev) {
            Successors::Cond { taken, not_taken } => {
                if block == taken {
                    self.push_bit(true);
                } else if block == not_taken {
                    self.push_bit(false);
                } else {
                    panic!("block {block} is not a successor of conditional {prev}");
                }
            }
            Successors::Jump(target) => {
                assert_eq!(block, target, "jump successor mismatch at {prev}");
            }
            Successors::Fallthrough(next) => {
                assert_eq!(block, next, "fallthrough successor mismatch at {prev}");
            }
            Successors::Call { callee, return_to } => {
                assert_eq!(block, callee, "call successor mismatch at {prev}");
                self.call_stack.push(return_to);
            }
            Successors::IndirectCall { return_to } => {
                self.call_stack.push(return_to);
                self.emit_tip(self.layout.block_addr(block));
            }
            Successors::Indirect => {
                self.emit_tip(self.layout.block_addr(block));
            }
            Successors::Return => {
                if self.call_stack.last() == Some(&block) {
                    // RET compression: a single taken bit.
                    self.call_stack.pop();
                    self.push_bit(true);
                } else {
                    self.call_stack.pop();
                    self.emit_tip(self.layout.block_addr(block));
                }
            }
        }
        self.current = Some(block);
    }

    /// Finishes the trace, flushing pending bits and appending a
    /// [`Packet::Fup`] (marking where execution stopped) followed by
    /// [`Packet::End`].
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_bits();
        if self.started {
            if let Some(last) = self.current {
                self.writer.write(Packet::Fup {
                    addr: self.layout.block_addr(last),
                });
            }
            self.writer.write(Packet::End);
        }
        self.writer.into_bytes()
    }
}

/// Records a full block sequence in one call.
///
/// # Examples
///
/// ```
/// use ripple_program::{CodeKind, Instruction, Layout, LayoutConfig, ProgramBuilder};
/// use ripple_trace::{reconstruct_trace, record_trace};
///
/// let mut b = ProgramBuilder::new();
/// let main = b.add_function("main", CodeKind::Static);
/// let b0 = b.add_block(main);
/// let b1 = b.add_block(main);
/// b.push_inst(b0, Instruction::other(4));
/// b.push_inst(b1, Instruction::ret());
/// let program = b.finish(main)?;
/// let layout = Layout::new(&program, &LayoutConfig::default());
///
/// let executed = vec![b0, b1];
/// let bytes = record_trace(&program, &layout, executed.iter().copied());
/// let decoded = reconstruct_trace(&program, &layout, &bytes).unwrap();
/// assert_eq!(decoded.blocks(), &executed[..]);
/// # Ok::<(), ripple_program::ValidateProgramError>(())
/// ```
pub fn record_trace(
    program: &Program,
    layout: &Layout,
    blocks: impl IntoIterator<Item = BlockId>,
) -> Vec<u8> {
    let mut recorder = TraceRecorder::new(program, layout);
    for b in blocks {
        recorder.record_block(b);
    }
    recorder.finish()
}

/// [`record_trace`] with a mid-stream sync point roughly every
/// `sync_interval` blocks (see [`TraceRecorder::with_sync_interval`]).
///
/// The stream stays decodable by the strict [`reconstruct_trace`]
/// (sync points are walked through transparently), and additionally gives
/// [`reconstruct_trace_lossy`] places to rejoin after a corrupt span.
///
/// [`reconstruct_trace`]: crate::reconstruct_trace
/// [`reconstruct_trace_lossy`]: crate::reconstruct_trace_lossy
pub fn record_trace_with_sync(
    program: &Program,
    layout: &Layout,
    blocks: impl IntoIterator<Item = BlockId>,
    sync_interval: u64,
) -> Vec<u8> {
    let mut recorder = TraceRecorder::new(program, layout).with_sync_interval(sync_interval);
    for b in blocks {
        recorder.record_block(b);
    }
    recorder.finish()
}
