//! Dynamic basic-block traces.

use std::collections::HashSet;

use ripple_program::{BlockId, Layout, Program};

/// A dynamic execution trace: the sequence of basic blocks a program
/// executed, in order.
///
/// This is the artifact Ripple's offline analysis consumes (the paper's
/// "program trace" of Fig. 4), typically obtained by decoding a packet
/// stream with [`reconstruct_trace`](crate::reconstruct_trace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BbTrace {
    blocks: Vec<BlockId>,
}

impl BbTrace {
    /// Wraps an executed block sequence.
    pub fn new(blocks: Vec<BlockId>) -> Self {
        BbTrace { blocks }
    }

    /// The executed blocks, in order.
    #[inline]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Number of executed blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates over executed blocks.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, BlockId>> {
        self.blocks.iter().copied()
    }

    /// Total dynamic instruction count under `program` (counts injected
    /// invalidations too, if the program has been rewritten).
    pub fn dynamic_instruction_count(&self, program: &Program) -> u64 {
        self.blocks
            .iter()
            .map(|&b| program.block(b).len() as u64)
            .sum()
    }

    /// Dynamic count of only the original (non-injected) instructions.
    pub fn original_instruction_count(&self, program: &Program) -> u64 {
        self.blocks
            .iter()
            .map(|&b| program.block(b).original_instructions().len() as u64)
            .sum()
    }

    /// Appends every block of `other`, in order. The concatenation
    /// primitive for stitching per-instance trace shards into one
    /// training trace (order matters: the merged trace replays shard by
    /// shard).
    pub fn extend_from(&mut self, other: &BbTrace) {
        self.blocks.extend_from_slice(&other.blocks);
    }

    /// Number of distinct blocks executed.
    pub fn unique_blocks(&self) -> usize {
        self.blocks.iter().collect::<HashSet<_>>().len()
    }

    /// Number of distinct I-cache lines touched under `layout` (the
    /// dynamic instruction footprint).
    pub fn footprint_lines(&self, layout: &Layout) -> usize {
        let mut lines = HashSet::new();
        for &b in &self.blocks {
            lines.extend(layout.lines_of_block(b));
        }
        lines.len()
    }
}

impl FromIterator<BlockId> for BbTrace {
    fn from_iter<I: IntoIterator<Item = BlockId>>(iter: I) -> Self {
        BbTrace::new(iter.into_iter().collect())
    }
}

impl Extend<BlockId> for BbTrace {
    fn extend<I: IntoIterator<Item = BlockId>>(&mut self, iter: I) {
        self.blocks.extend(iter);
    }
}

impl<'a> IntoIterator for &'a BbTrace {
    type Item = BlockId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, BlockId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::{CodeKind, Instruction, LayoutConfig, ProgramBuilder};

    #[test]
    fn counts() {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let b0 = b.add_block(main);
        let b1 = b.add_block(main);
        b.push_inst(b0, Instruction::other(4));
        b.push_inst(b0, Instruction::other(4));
        b.push_inst(b1, Instruction::ret());
        let p = b.finish(main).unwrap();
        let layout = Layout::new(&p, &LayoutConfig::default());

        let trace: BbTrace = vec![b0, b1, b0, b1].into_iter().collect();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.unique_blocks(), 2);
        assert_eq!(trace.dynamic_instruction_count(&p), 6);
        assert_eq!(trace.original_instruction_count(&p), 6);
        assert_eq!(trace.footprint_lines(&layout), 1);
        assert!(!trace.is_empty());
    }

    #[test]
    fn extend_and_iterate() {
        let mut trace = BbTrace::default();
        trace.extend(vec![BlockId::new(1), BlockId::new(2)]);
        let collected: Vec<_> = (&trace).into_iter().collect();
        assert_eq!(collected, vec![BlockId::new(1), BlockId::new(2)]);
    }

    #[test]
    fn extend_from_concatenates_in_order() {
        let mut merged = BbTrace::new(vec![BlockId::new(1), BlockId::new(2)]);
        let shard = BbTrace::new(vec![BlockId::new(3), BlockId::new(1)]);
        merged.extend_from(&shard);
        merged.extend_from(&BbTrace::default());
        assert_eq!(
            merged.blocks(),
            &[
                BlockId::new(1),
                BlockId::new(2),
                BlockId::new(3),
                BlockId::new(1)
            ]
        );
        // The source shard is untouched.
        assert_eq!(shard.len(), 2);
    }
}
