//! Hardware-style control-flow tracing for the Ripple reproduction.
//!
//! Ripple profiles applications with Intel Processor Trace (§III-A of the
//! paper). This crate provides a software stand-in with the same
//! information content and the same compression tricks:
//!
//! * [`Packet`] / [`PacketWriter`] / [`PacketReader`] — a compact packet
//!   format (TNT bit packing, IP compression, compressed returns);
//! * [`TraceRecorder`] / [`record_trace`] — turn an executed basic-block
//!   sequence into a packet stream;
//! * [`reconstruct_trace`] — decode a packet stream back into a
//!   [`BbTrace`] by walking the program's control-flow graph;
//! * [`reconstruct_trace_lossy`] — best-effort decoding of damaged
//!   streams: corrupt spans are skipped up to the next PSB sync point
//!   (see [`record_trace_with_sync`]) and accounted in a [`TraceHealth`].
//!
//! # Examples
//!
//! ```
//! use ripple_program::{CodeKind, Instruction, Layout, LayoutConfig, ProgramBuilder};
//! use ripple_trace::{reconstruct_trace, record_trace};
//!
//! // A tiny loop: b0 conditionally re-executes itself, then returns via b1.
//! let mut b = ProgramBuilder::new();
//! let main = b.add_function("main", CodeKind::Static);
//! let b0 = b.add_block(main);
//! let b1 = b.add_block(main);
//! b.push_inst(b0, Instruction::other(4));
//! b.push_inst(b0, Instruction::cond_branch(b0));
//! b.push_inst(b1, Instruction::ret());
//! let program = b.finish(main)?;
//! let layout = Layout::new(&program, &LayoutConfig::default());
//!
//! let executed = vec![b0, b0, b0, b1];
//! let bytes = record_trace(&program, &layout, executed.iter().copied());
//! let trace = reconstruct_trace(&program, &layout, &bytes).unwrap();
//! assert_eq!(trace.blocks(), &executed[..]);
//! # Ok::<(), ripple_program::ValidateProgramError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_debug_implementations)]

mod bbtrace;
mod packet;
mod reconstruct;
mod recorder;

pub use bbtrace::BbTrace;
pub use packet::{
    decode_packets, DecodePacketError, Packet, PacketReader, PacketWriter, LONG_TNT_BITS,
    SHORT_TNT_BITS,
};
pub use reconstruct::{
    reconstruct_trace, reconstruct_trace_lossy, DecodeOptions, LossyReconstruction,
    ReconstructError, TraceHealth,
};
pub use recorder::{record_trace, record_trace_with_sync, TraceRecorder};
