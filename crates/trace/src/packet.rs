//! Trace packet definitions, modelled on Intel Processor Trace.
//!
//! Like Intel PT, the format achieves high compression by recording only
//! what cannot be recovered from the binary: one bit per conditional branch
//! (TNT), compressed target addresses for indirect transfers (TIP), and a
//! single taken bit for returns that match the call stack ("RET
//! compression"). Direct jumps, calls and fall-throughs produce no packets
//! at all.

use std::fmt;

use ripple_program::Addr;

/// Maximum TNT bits carried by a short TNT packet.
pub const SHORT_TNT_BITS: u8 = 6;

/// Maximum TNT bits carried by a long TNT packet.
pub const LONG_TNT_BITS: u8 = 47;

/// A single trace packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packet {
    /// Stream synchronization marker; starts a trace.
    Psb,
    /// Taken/not-taken bits for conditional branches and compressed
    /// returns. Bit `i` (LSB-first) is the `i`-th oldest outcome.
    Tnt {
        /// Outcome bits, oldest in bit 0.
        bits: u64,
        /// Number of valid bits (1..=[`LONG_TNT_BITS`]).
        count: u8,
    },
    /// Target instruction pointer for an indirect transfer (or the initial
    /// entry point after [`Packet::Psb`]).
    Tip {
        /// The branch target.
        addr: Addr,
    },
    /// Flow-update: the address of the last executed block, emitted just
    /// before [`Packet::End`] so the decoder knows where tracing stopped
    /// (Intel PT emits FUP/TIP.PGD for the same reason).
    Fup {
        /// Start address of the final executed block.
        addr: Addr,
    },
    /// End of trace.
    End,
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Packet::Psb => write!(f, "PSB"),
            Packet::Fup { addr } => write!(f, "FUP {addr}"),
            Packet::Tnt { bits, count } => {
                write!(f, "TNT[")?;
                for i in 0..*count {
                    write!(f, "{}", (bits >> i) & 1)?;
                }
                write!(f, "]")
            }
            Packet::Tip { addr } => write!(f, "TIP {addr}"),
            Packet::End => write!(f, "END"),
        }
    }
}

/// Errors produced while decoding a packet stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodePacketError {
    /// The stream ended in the middle of a packet.
    Truncated,
    /// An unknown header byte was encountered.
    BadHeader(u8),
    /// A TNT packet declared an out-of-range bit count.
    BadTntCount(u8),
}

impl fmt::Display for DecodePacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodePacketError::Truncated => write!(f, "packet stream ended mid-packet"),
            DecodePacketError::BadHeader(b) => write!(f, "unknown packet header byte {b:#04x}"),
            DecodePacketError::BadTntCount(n) => write!(f, "invalid tnt bit count {n}"),
        }
    }
}

impl std::error::Error for DecodePacketError {}

// Header bytes. Short TNT packets are any odd byte; all other headers are
// even and distinguished by their low nibble.
const HDR_LONG_TNT: u8 = 0x02;
const HDR_TIP_NIBBLE: u8 = 0x04;
pub(crate) const HDR_PSB: u8 = 0x06;
const HDR_END: u8 = 0x08;
const HDR_FUP_NIBBLE: u8 = 0x0a;

/// Serializes packets into a compact byte stream.
///
/// # Examples
///
/// ```
/// use ripple_program::Addr;
/// use ripple_trace::{decode_packets, PacketWriter, Packet};
///
/// let mut w = PacketWriter::new();
/// w.write(Packet::Psb);
/// w.write(Packet::Tip { addr: Addr::new(0x400000) });
/// w.write(Packet::Tnt { bits: 0b101, count: 3 });
/// w.write(Packet::End);
/// let bytes = w.into_bytes();
/// let packets = decode_packets(&bytes)?;
/// assert_eq!(packets.len(), 4);
/// # Ok::<(), ripple_trace::DecodePacketError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct PacketWriter {
    bytes: Vec<u8>,
    last_ip: u64,
}

impl PacketWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one packet.
    ///
    /// A [`Packet::Psb`] resets the IP-compression state (like Intel PT's
    /// PSB), so the first TIP/FUP after a sync point is always encoded
    /// with its full address and a decoder can join the stream at any PSB
    /// without history.
    ///
    /// # Panics
    ///
    /// Panics if a [`Packet::Tnt`] has `count == 0` or
    /// `count > LONG_TNT_BITS`.
    pub fn write(&mut self, packet: Packet) {
        match packet {
            Packet::Psb => {
                self.bytes.push(HDR_PSB);
                self.last_ip = 0;
            }
            Packet::End => self.bytes.push(HDR_END),
            Packet::Tnt { bits, count } => {
                assert!(
                    (1..=LONG_TNT_BITS).contains(&count),
                    "tnt count out of range: {count}"
                );
                if count <= SHORT_TNT_BITS {
                    // Odd marker bit in bit 0, payload in bits 1..=count,
                    // stop bit at count + 1.
                    let payload = (bits & ((1 << count) - 1)) << 1;
                    let byte = (1u8 << (count + 1)) | (payload as u8) | 1;
                    self.bytes.push(byte);
                } else {
                    self.bytes.push(HDR_LONG_TNT);
                    self.bytes.push(count);
                    let masked = bits & ((1u64 << count) - 1);
                    self.bytes.extend_from_slice(&masked.to_le_bytes()[..6]);
                }
            }
            Packet::Tip { addr } | Packet::Fup { addr } => {
                // IP compression: emit only the low bytes that differ from
                // the previous IP packet.
                let nibble = if matches!(packet, Packet::Fup { .. }) {
                    HDR_FUP_NIBBLE
                } else {
                    HDR_TIP_NIBBLE
                };
                let ip = addr.get();
                // Send exactly the low bytes up to the highest byte that
                // differs from the previous IP (0..=8 payload bytes).
                let diff = ip ^ self.last_ip;
                let k = if diff == 0 {
                    0u8
                } else {
                    (64 - diff.leading_zeros() as u8).div_ceil(8)
                };
                self.bytes.push(nibble | (k << 4));
                self.bytes
                    .extend_from_slice(&ip.to_le_bytes()[..k as usize]);
                self.last_ip = ip;
            }
        }
    }

    /// Bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the writer, returning the encoded stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Streaming packet decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct PacketReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    last_ip: u64,
}

impl<'a> PacketReader<'a> {
    /// Creates a reader over an encoded stream.
    pub fn new(bytes: &'a [u8]) -> Self {
        PacketReader {
            bytes,
            pos: 0,
            last_ip: 0,
        }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether the stream is exhausted.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Decodes the next packet.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodePacketError`] on truncation or malformed headers.
    /// Returns `Ok(None)` at the end of the byte stream.
    pub fn next_packet(&mut self) -> Result<Option<Packet>, DecodePacketError> {
        let Some(&hdr) = self.bytes.get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        if hdr & 1 == 1 {
            // Short TNT: stop bit is the highest set bit; payload below it,
            // above the marker bit.
            let stop = 7 - hdr.leading_zeros() as u8;
            if stop < 2 {
                return Err(DecodePacketError::BadHeader(hdr));
            }
            let count = stop - 1;
            let bits = u64::from((hdr >> 1) & ((1 << count) - 1));
            return Ok(Some(Packet::Tnt { bits, count }));
        }
        // Only TIP/FUP headers carry payload in the high nibble (the IP
        // byte count); the writer emits every other header with it clear,
        // so a set high nibble there is corruption, not a packet. The
        // lossy resync scan relies on this: it looks for the exact PSB
        // byte, and the strict decoder must not accept anything looser.
        match hdr & 0x0f {
            HDR_PSB if hdr == HDR_PSB => {
                // PSB resets IP compression (mirrors the writer), so a
                // decoder can resynchronize at any PSB without history.
                self.last_ip = 0;
                Ok(Some(Packet::Psb))
            }
            HDR_END if hdr == HDR_END => Ok(Some(Packet::End)),
            HDR_LONG_TNT if hdr == HDR_LONG_TNT => {
                let count = *self
                    .bytes
                    .get(self.pos)
                    .ok_or(DecodePacketError::Truncated)?;
                self.pos += 1;
                if count == 0 || count > LONG_TNT_BITS {
                    return Err(DecodePacketError::BadTntCount(count));
                }
                let end = self.pos + 6;
                let payload = self
                    .bytes
                    .get(self.pos..end)
                    .ok_or(DecodePacketError::Truncated)?;
                self.pos = end;
                let mut buf = [0u8; 8];
                buf[..6].copy_from_slice(payload);
                let bits = u64::from_le_bytes(buf) & ((1u64 << count) - 1);
                Ok(Some(Packet::Tnt { bits, count }))
            }
            HDR_TIP_NIBBLE | HDR_FUP_NIBBLE => {
                let k = (hdr >> 4) as usize;
                if k > 8 {
                    return Err(DecodePacketError::BadHeader(hdr));
                }
                let end = self.pos + k;
                let payload = self
                    .bytes
                    .get(self.pos..end)
                    .ok_or(DecodePacketError::Truncated)?;
                self.pos = end;
                let mut buf = self.last_ip.to_le_bytes();
                buf[..k].copy_from_slice(payload);
                let ip = u64::from_le_bytes(buf);
                self.last_ip = ip;
                let addr = Addr::new(ip);
                Ok(Some(if hdr & 0x0f == HDR_FUP_NIBBLE {
                    Packet::Fup { addr }
                } else {
                    Packet::Tip { addr }
                }))
            }
            _ => Err(DecodePacketError::BadHeader(hdr)),
        }
    }
}

/// Decodes an entire stream into a packet list.
///
/// # Errors
///
/// Returns the first [`DecodePacketError`] encountered.
pub fn decode_packets(bytes: &[u8]) -> Result<Vec<Packet>, DecodePacketError> {
    let mut reader = PacketReader::new(bytes);
    let mut packets = Vec::new();
    while let Some(p) = reader.next_packet()? {
        packets.push(p);
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(packets: &[Packet]) {
        let mut w = PacketWriter::new();
        for &p in packets {
            w.write(p);
        }
        let decoded = decode_packets(w.as_bytes()).expect("decode");
        assert_eq!(decoded, packets);
    }

    #[test]
    fn psb_end_roundtrip() {
        roundtrip(&[Packet::Psb, Packet::End]);
    }

    #[test]
    fn short_tnt_roundtrip() {
        for count in 1..=SHORT_TNT_BITS {
            for bits in 0..(1u64 << count) {
                roundtrip(&[Packet::Tnt { bits, count }]);
            }
        }
    }

    #[test]
    fn long_tnt_roundtrip() {
        roundtrip(&[Packet::Tnt {
            bits: 0x7abc_dead_beef,
            count: 47,
        }]);
        roundtrip(&[Packet::Tnt {
            bits: 0b1010101,
            count: 7,
        }]);
    }

    #[test]
    fn tip_compression_shrinks_repeated_upper_bytes() {
        let mut w = PacketWriter::new();
        w.write(Packet::Tip {
            addr: Addr::new(0x0040_1000),
        });
        let first_len = w.as_bytes().len();
        w.write(Packet::Tip {
            addr: Addr::new(0x0040_1040),
        });
        let second_len = w.as_bytes().len() - first_len;
        assert!(second_len < first_len, "{second_len} !< {first_len}");
        let decoded = decode_packets(w.as_bytes()).unwrap();
        assert_eq!(
            decoded,
            vec![
                Packet::Tip {
                    addr: Addr::new(0x0040_1000)
                },
                Packet::Tip {
                    addr: Addr::new(0x0040_1040)
                },
            ]
        );
    }

    #[test]
    fn tip_identical_address_emits_zero_payload() {
        let mut w = PacketWriter::new();
        w.write(Packet::Tip {
            addr: Addr::new(0x42),
        });
        let l1 = w.as_bytes().len();
        w.write(Packet::Tip {
            addr: Addr::new(0x42),
        });
        assert_eq!(w.as_bytes().len() - l1, 1); // header only
        let decoded = decode_packets(w.as_bytes()).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], decoded[1]);
    }

    #[test]
    fn mixed_stream_roundtrip() {
        roundtrip(&[
            Packet::Psb,
            Packet::Tip {
                addr: Addr::new(0x40_0000),
            },
            Packet::Tnt {
                bits: 0b11,
                count: 2,
            },
            Packet::Tip {
                addr: Addr::new(0x40_0123),
            },
            Packet::Tnt {
                bits: 0xdeadbeef,
                count: 36,
            },
            Packet::End,
        ]);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut w = PacketWriter::new();
        w.write(Packet::Tip {
            addr: Addr::new(0x1234_5678),
        });
        let bytes = w.into_bytes();
        assert_eq!(
            PacketReader::new(&bytes[..bytes.len() - 1])
                .next_packet()
                .unwrap_err(),
            DecodePacketError::Truncated
        );
    }

    #[test]
    fn bad_header_is_an_error() {
        assert!(matches!(
            PacketReader::new(&[0x0e]).next_packet(),
            Err(DecodePacketError::BadHeader(0x0e))
        ));
    }

    #[test]
    fn high_nibble_noise_on_payloadless_headers_is_rejected() {
        // A single flipped bit in a PSB/END/long-TNT header must surface
        // as corruption, not silently decode as the clean header (found
        // by the `faults` check dimension: 0x16 used to pass for PSB
        // while the lossy resync scan only matches the exact byte).
        for hdr in [0x16u8, 0x26, 0x18, 0x48, 0x12, 0xf2] {
            assert!(
                matches!(
                    PacketReader::new(&[hdr]).next_packet(),
                    Err(DecodePacketError::BadHeader(b)) if b == hdr
                ),
                "{hdr:#04x}"
            );
        }
    }

    #[test]
    fn fup_roundtrip_shares_ip_compression() {
        let mut w = PacketWriter::new();
        w.write(Packet::Tip {
            addr: Addr::new(0x0040_2000),
        });
        w.write(Packet::Fup {
            addr: Addr::new(0x0040_2040),
        });
        let decoded = decode_packets(w.as_bytes()).unwrap();
        assert_eq!(
            decoded[1],
            Packet::Fup {
                addr: Addr::new(0x0040_2040)
            }
        );
    }

    #[test]
    fn psb_resets_ip_compression() {
        // A TIP after a mid-stream PSB must carry its full address: a
        // decoder that joins the stream at that PSB (no history) has to
        // recover the same address as one that read from the start.
        let mut w = PacketWriter::new();
        w.write(Packet::Tip {
            addr: Addr::new(0x0040_2000),
        });
        w.write(Packet::Psb);
        let sync_pos = w.as_bytes().len() - 1;
        w.write(Packet::Tip {
            addr: Addr::new(0x0040_2000),
        });
        w.write(Packet::End);
        let bytes = w.into_bytes();

        let full = decode_packets(&bytes).unwrap();
        let joined = decode_packets(&bytes[sync_pos..]).unwrap();
        assert_eq!(full[1..], joined[..]);
        assert_eq!(
            joined[1],
            Packet::Tip {
                addr: Addr::new(0x0040_2000)
            }
        );
    }

    #[test]
    fn bad_tnt_count_is_an_error() {
        let bytes = [HDR_LONG_TNT, 60, 0, 0, 0, 0, 0, 0];
        assert_eq!(
            PacketReader::new(&bytes).next_packet().unwrap_err(),
            DecodePacketError::BadTntCount(60)
        );
    }

    #[test]
    fn empty_stream_yields_none() {
        assert_eq!(PacketReader::new(&[]).next_packet().unwrap(), None);
    }

    #[test]
    fn display_is_informative() {
        let p = Packet::Tnt {
            bits: 0b01,
            count: 2,
        };
        assert_eq!(p.to_string(), "TNT[10]");
        assert_eq!(Packet::Psb.to_string(), "PSB");
    }
}
