//! Streaming recorder: one JSON object per line, for timeline tooling.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use crate::{Field, FieldValue, Recorder};

/// Streams every observation to a writer as one JSON line.
///
/// Each line carries a `t_ns` offset from the recorder's creation, a
/// `kind` (`"phase"` / `"counter"` / `"gauge"` / `"event"`), the
/// observation `name`, and the payload. JSON is emitted with hand-rolled
/// escaping so this crate stays dependency-free; the output parses with
/// `ripple-json` (the workspace tests assert it).
///
/// Write errors are swallowed: observability must never fail the run it
/// observes.
pub struct JsonlRecorder<W: Write + Send> {
    epoch: Instant,
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Wraps a writer; `t_ns` offsets count from this moment.
    pub fn new(writer: W) -> Self {
        JsonlRecorder {
            epoch: Instant::now(),
            writer: Mutex::new(writer),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        // A poisoning panic was already reported where it happened; the
        // recorder must not compound it, so recover the writer as-is.
        let mut w = self
            .writer
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let _ = w.flush();
        w
    }

    fn emit(&self, line: String) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn prefix(&self, kind: &str, name: &str) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"t_ns\":");
        s.push_str(&self.epoch.elapsed().as_nanos().to_string());
        s.push_str(",\"kind\":\"");
        s.push_str(kind);
        s.push_str("\",\"name\":");
        push_json_str(&mut s, name);
        s
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlRecorder<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn phase(&self, name: &str, wall_nanos: u64) {
        let mut s = self.prefix("phase", name);
        s.push_str(",\"wall_ns\":");
        s.push_str(&wall_nanos.to_string());
        s.push('}');
        self.emit(s);
    }

    fn add(&self, name: &str, delta: u64) {
        let mut s = self.prefix("counter", name);
        s.push_str(",\"delta\":");
        s.push_str(&delta.to_string());
        s.push('}');
        self.emit(s);
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut s = self.prefix("gauge", name);
        s.push_str(",\"value\":");
        push_json_f64(&mut s, value);
        s.push('}');
        self.emit(s);
    }

    fn event(&self, name: &str, fields: &[Field<'_>]) {
        let mut s = self.prefix("event", name);
        s.push_str(",\"fields\":{");
        for (i, &(fname, fval)) in fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, fname);
            s.push(':');
            match fval {
                FieldValue::U64(x) => s.push_str(&x.to_string()),
                FieldValue::I64(x) => s.push_str(&x.to_string()),
                FieldValue::F64(x) => push_json_f64(&mut s, x),
                FieldValue::Str(v) => push_json_str(&mut s, v),
                FieldValue::Bool(b) => s.push_str(if b { "true" } else { "false" }),
            }
        }
        s.push_str("}}");
        self.emit(s);
    }
}

/// Appends `value` as a JSON string literal (quotes + escapes).
fn push_json_str(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` as a JSON number; non-finite values become `null`
/// (matching `ripple-json` printing).
fn push_json_f64(out: &mut String, value: f64) {
    if !value.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{value}");
    out.push_str(&s);
    // Keep the token a JSON *number* that round-trips as f64.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(recorder: JsonlRecorder<Vec<u8>>) -> Vec<String> {
        let bytes = recorder.into_inner();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn emits_one_line_per_observation() {
        let r = JsonlRecorder::new(Vec::new());
        r.phase("session.record", 1234);
        r.add("session.runs", 1);
        r.gauge("threads", 4.0);
        r.event(
            "harness.job",
            &[
                ("scope", FieldValue::Str("eval")),
                ("job", FieldValue::U64(0)),
                ("ok", FieldValue::Bool(true)),
            ],
        );
        let out = lines(r);
        assert_eq!(out.len(), 4);
        assert!(out[0].contains("\"kind\":\"phase\""));
        assert!(out[0].contains("\"wall_ns\":1234"));
        assert!(out[1].contains("\"kind\":\"counter\""));
        assert!(out[2].contains("\"value\":4.0"));
        assert!(out[3].contains("\"scope\":\"eval\""));
        assert!(out[3].contains("\"ok\":true"));
    }

    #[test]
    fn escapes_strings_and_maps_nonfinite_to_null() {
        let r = JsonlRecorder::new(Vec::new());
        r.event(
            "e",
            &[
                ("quote", FieldValue::Str("a\"b\\c\nd")),
                ("nan", FieldValue::F64(f64::NAN)),
            ],
        );
        let out = lines(r);
        assert!(out[0].contains("\"quote\":\"a\\\"b\\\\c\\nd\""));
        assert!(out[0].contains("\"nan\":null"));
    }

    #[test]
    fn float_counters_round_trip_as_numbers() {
        let r = JsonlRecorder::new(Vec::new());
        r.gauge("g", 2.0);
        r.gauge("h", 0.125);
        let out = lines(r);
        assert!(out[0].contains("\"value\":2.0"));
        assert!(out[1].contains("\"value\":0.125"));
    }
}
