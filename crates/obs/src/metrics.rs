//! In-memory aggregation: counters, gauges, phase timers, event log.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::{Field, FieldValue, Recorder};

/// Aggregate statistics of one named phase timer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// How many times the phase completed.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_nanos: u64,
    /// Longest single completion, nanoseconds.
    pub max_nanos: u64,
}

/// An owned copy of an event field value (the borrowed [`FieldValue`]
/// cannot outlive the emitting call).
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<FieldValue<'_>> for OwnedValue {
    fn from(v: FieldValue<'_>) -> Self {
        match v {
            FieldValue::U64(x) => OwnedValue::U64(x),
            FieldValue::I64(x) => OwnedValue::I64(x),
            FieldValue::F64(x) => OwnedValue::F64(x),
            FieldValue::Str(s) => OwnedValue::Str(s.to_string()),
            FieldValue::Bool(b) => OwnedValue::Bool(b),
        }
    }
}

impl OwnedValue {
    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            OwnedValue::U64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            OwnedValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One recorded event: its name plus owned field copies.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// Fields in emission order.
    pub fields: Vec<(String, OwnedValue)>,
}

impl EventRecord {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&OwnedValue> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    phases: BTreeMap<String, PhaseStat>,
    events: Vec<EventRecord>,
}

/// Aggregating recorder: monotonic counters, last-write gauges, per-phase
/// timer statistics, and the raw event log. Shareable across threads; a
/// [`snapshot`](MetricsRecorder::snapshot) can be taken at any time.
///
/// Aggregation maps are `BTreeMap`s so snapshots list keys in a stable
/// order regardless of thread interleaving.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    inner: Mutex<Inner>,
}

impl MetricsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Each lock recovers from poisoning instead of panicking: metric
    /// state is a set of independent counters (every update leaves it
    /// consistent), and observability must not compound a panic that was
    /// already reported where it happened.
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.locked();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            phases: inner.phases.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            events: inner.events.clone(),
        }
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn phase(&self, name: &str, wall_nanos: u64) {
        let mut inner = self.locked();
        let stat = inner.phases.entry(name.to_string()).or_default();
        stat.count += 1;
        stat.total_nanos += wall_nanos;
        stat.max_nanos = stat.max_nanos.max(wall_nanos);
    }

    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.locked();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut inner = self.locked();
        inner.gauges.insert(name.to_string(), value);
    }

    fn event(&self, name: &str, fields: &[Field<'_>]) {
        let record = EventRecord {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|&(n, v)| (n.to_string(), OwnedValue::from(v)))
                .collect(),
        };
        let mut inner = self.locked();
        inner.events.push(record);
    }
}

/// A point-in-time copy of a [`MetricsRecorder`]'s state, with keys in
/// sorted (deterministic) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Phase statistics, sorted by name.
    pub phases: Vec<(String, PhaseStat)>,
    /// Events, in emission order (across threads: in lock-acquisition
    /// order).
    pub events: Vec<EventRecord>,
}

impl MetricsSnapshot {
    /// Looks up a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a phase's statistics.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Events with the given name.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.events.iter().filter(move |e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let m = MetricsRecorder::new();
        m.add("jobs", 1);
        m.add("jobs", 2);
        m.gauge("threads", 4.0);
        m.gauge("threads", 8.0);
        let s = m.snapshot();
        assert_eq!(s.counter("jobs"), Some(3));
        assert_eq!(s.gauge("threads"), Some(8.0));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn phases_track_count_total_max() {
        let m = MetricsRecorder::new();
        m.phase("p", 10);
        m.phase("p", 30);
        m.phase("q", 5);
        let s = m.snapshot();
        let p = s.phase("p").unwrap();
        assert_eq!((p.count, p.total_nanos, p.max_nanos), (2, 40, 30));
        assert_eq!(s.phase("q").unwrap().count, 1);
        // BTreeMap ordering: sorted keys in the snapshot.
        assert_eq!(s.phases[0].0, "p");
        assert_eq!(s.phases[1].0, "q");
    }

    #[test]
    fn events_keep_fields() {
        let m = MetricsRecorder::new();
        m.event(
            "harness.job",
            &[
                ("scope", FieldValue::Str("eval")),
                ("job", FieldValue::U64(3)),
            ],
        );
        let s = m.snapshot();
        let e = s.events_named("harness.job").next().unwrap();
        assert_eq!(e.field("scope").and_then(OwnedValue::as_str), Some("eval"));
        assert_eq!(e.field("job").and_then(OwnedValue::as_u64), Some(3));
        assert!(e.field("missing").is_none());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let m = std::sync::Arc::new(MetricsRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        m.add("n", 1);
                        m.phase("p", 1);
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.counter("n"), Some(400));
        assert_eq!(s.phase("p").unwrap().count, 400);
    }
}
