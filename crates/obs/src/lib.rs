//! Structured observability for the Ripple pipeline.
//!
//! The simulator grid of the paper's evaluation (§IV) is hundreds of runs
//! executed by a parallel harness; this crate makes that pipeline
//! inspectable without perturbing it. It mirrors the `EvictionSink`
//! observer pattern of `ripple-sim`: producers push phase timings,
//! counters, gauges and span events into a [`Recorder`], and the recorder
//! decides what to do with them.
//!
//! Three recorders are provided:
//!
//! * [`NullRecorder`] — the zero-cost default. Every trait method is an
//!   inlined no-op and [`Recorder::enabled`] returns `false`, so
//!   instrumented seams skip even their clock reads.
//! * [`MetricsRecorder`] — aggregates monotonic counters, last-write
//!   gauges, per-phase timer statistics (count / total / max) and the raw
//!   event log, all snapshotable for a structured run report.
//! * [`JsonlRecorder`] — streams every observation as one JSON line to a
//!   writer, for timeline tooling.
//!
//! Recorders observe only; they never feed back into simulation state, so
//! enabling one leaves every simulation output byte-identical (the
//! workspace determinism suite asserts this).
//!
//! The contract producers follow: **time nothing unless
//! [`Recorder::enabled`] says so.** The [`time_phase`] helper and
//! [`PhaseTimer`] encode that rule.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_debug_implementations)]

mod jsonl;
mod metrics;

pub use jsonl::JsonlRecorder;
pub use metrics::{EventRecord, MetricsRecorder, MetricsSnapshot, OwnedValue, PhaseStat};

use std::sync::Arc;
use std::time::Instant;

/// A typed value attached to an event field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Borrowed string.
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

/// One named field of an event: `(name, value)`.
pub type Field<'a> = (&'a str, FieldValue<'a>);

/// Observer of pipeline activity, called synchronously from the code being
/// observed. Implementations must be thread-safe: the evaluation harness
/// reports job completions from worker threads concurrently.
///
/// All methods default to no-ops so a recorder only implements what it
/// cares about; [`NullRecorder`] implements nothing and is the zero-cost
/// default throughout the workspace.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether this recorder wants data at all. Hot paths consult this
    /// before reading clocks or formatting anything; when it returns
    /// `false` instrumentation must cost nothing but this call.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// A completed phase of work with its wall-clock duration.
    ///
    /// Phase names form a stable dotted taxonomy (`frontend.warmup`,
    /// `session.record`, `eval.sim_runs`, `harness.job`, …); the same name
    /// may be reported many times and aggregates.
    #[inline]
    fn phase(&self, name: &str, wall_nanos: u64) {
        let _ = (name, wall_nanos);
    }

    /// Increments a monotonic counter.
    #[inline]
    fn add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets a last-write-wins gauge.
    #[inline]
    fn gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// A structured point event with typed fields (per-job harness
    /// timings, run milestones).
    #[inline]
    fn event(&self, name: &str, fields: &[Field<'_>]) {
        let _ = (name, fields);
    }
}

/// Discards everything; the zero-cost default recorder.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// Fans every observation out to several recorders (e.g. a
/// [`MetricsRecorder`] for the run report plus a live progress printer).
///
/// With no sinks — or only disabled sinks — the tee itself reports
/// disabled, so instrumented code stays on its free path.
#[derive(Debug, Default)]
pub struct TeeRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl TeeRecorder {
    /// Creates an empty (disabled) tee.
    pub fn new() -> Self {
        TeeRecorder::default()
    }

    /// Adds a recorder to the fan-out.
    pub fn with(mut self, sink: Arc<dyn Recorder>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Number of attached recorders.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the tee has no recorders attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Recorder for TeeRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn phase(&self, name: &str, wall_nanos: u64) {
        for s in &self.sinks {
            s.phase(name, wall_nanos);
        }
    }

    fn add(&self, name: &str, delta: u64) {
        for s in &self.sinks {
            s.add(name, delta);
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        for s in &self.sinks {
            s.gauge(name, value);
        }
    }

    fn event(&self, name: &str, fields: &[Field<'_>]) {
        for s in &self.sinks {
            s.event(name, fields);
        }
    }
}

/// Times `f` and reports it as phase `name` — free (no clock read) when
/// the recorder is disabled.
pub fn time_phase<T>(recorder: &dyn Recorder, name: &str, f: impl FnOnce() -> T) -> T {
    if !recorder.enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    recorder.phase(name, start.elapsed().as_nanos() as u64);
    out
}

/// A manually driven phase stopwatch, for seams where a closure is
/// awkward (e.g. splitting one loop into warmup and measure phases).
///
/// Carries no clock when the recorder it was started against is disabled,
/// so `finish`/`lap` become no-ops.
#[derive(Debug)]
pub struct PhaseTimer {
    start: Option<Instant>,
}

impl PhaseTimer {
    /// Starts the stopwatch (reads the clock only if `recorder` is
    /// enabled).
    pub fn start(recorder: &dyn Recorder) -> Self {
        PhaseTimer {
            start: recorder.enabled().then(Instant::now),
        }
    }

    /// Reports the elapsed time as phase `name` and restarts the
    /// stopwatch.
    pub fn lap(&mut self, recorder: &dyn Recorder, name: &str) {
        if let Some(start) = self.start {
            let now = Instant::now();
            recorder.phase(name, (now - start).as_nanos() as u64);
            self.start = Some(now);
        }
    }

    /// Reports the elapsed time as phase `name` and consumes the timer.
    pub fn finish(self, recorder: &dyn Recorder, name: &str) {
        if let Some(start) = self.start {
            recorder.phase(name, start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.phase("x", 1);
        r.add("x", 1);
        r.gauge("x", 1.0);
        r.event("x", &[("a", FieldValue::U64(1))]);
    }

    #[test]
    fn time_phase_skips_clock_when_disabled() {
        // Behavioural only: the closure still runs and returns.
        let out = time_phase(&NullRecorder, "p", || 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn tee_fans_out_and_reports_enabled() {
        let a = Arc::new(MetricsRecorder::new());
        let b = Arc::new(MetricsRecorder::new());
        let tee = TeeRecorder::new()
            .with(a.clone())
            .with(b.clone())
            .with(Arc::new(NullRecorder));
        assert!(tee.enabled());
        assert_eq!(tee.len(), 3);
        tee.phase("p", 5);
        tee.add("c", 2);
        for m in [&a, &b] {
            let snap = m.snapshot();
            assert_eq!(snap.counter("c"), Some(2));
            assert_eq!(snap.phase("p").map(|p| p.total_nanos), Some(5));
        }
    }

    #[test]
    fn empty_tee_is_disabled() {
        assert!(!TeeRecorder::new().enabled());
        assert!(TeeRecorder::new().is_empty());
    }

    #[test]
    fn phase_timer_records_laps() {
        let m = MetricsRecorder::new();
        let mut t = PhaseTimer::start(&m);
        t.lap(&m, "first");
        t.finish(&m, "second");
        let snap = m.snapshot();
        assert_eq!(snap.phase("first").map(|p| p.count), Some(1));
        assert_eq!(snap.phase("second").map(|p| p.count), Some(1));
    }
}
