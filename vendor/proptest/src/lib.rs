//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small, dependency-free property-testing shim: `Strategy` with `prop_map`
//! and `boxed`, integer/float range strategies, tuples, `Just`, `any`,
//! `collection::vec`, `bool::weighted`, `prop_oneof!`, and the `proptest!`
//! macro (with `#![proptest_config(ProptestConfig::with_cases(N))]`).
//!
//! Differences from real proptest: no shrinking (a failing case reports the
//! generated inputs via the panic message only) and a fixed deterministic RNG
//! per test function, so failures always reproduce.

pub mod test_runner {
    /// Run-count configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 RNG driving generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from the test name so each property gets its own
        /// (stable) stream.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator, mirroring `proptest::strategy::Strategy` minus
    /// shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as u128 + draw) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as u128 + draw) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length within the bounds.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`weighted`].
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.0
        }
    }

    /// Generates `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weight out of range: {p}");
        Weighted(p)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests, mirroring proptest's `proptest! { ... }` block.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;) => {};
    (@impl $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}
