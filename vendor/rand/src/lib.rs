//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a deterministic, dependency-free implementation of the few APIs it needs:
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over half-open and
//! inclusive integer ranges, and `Rng::gen_bool`. The generator is a
//! splitmix64 stream, which is plenty for synthetic-workload generation and
//! property tests; it is *not* the upstream ChaCha-based `StdRng`, so numeric
//! streams differ from real `rand 0.8` (all in-repo consumers only require
//! determinism, not a specific stream).

use std::ops::{Range, RangeInclusive};

/// Namespaced re-export mirroring `rand::rngs::StdRng`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A deterministic 64-bit PRNG (splitmix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-advance once so that nearby seeds do not yield nearby first
        // outputs (splitmix64 already mixes well, this decorrelates state 0).
        let mut rng = StdRng {
            state: seed ^ 0x51f8_5f8c_8f9d_77a1,
        };
        rng.state = rng.next_u64();
        StdRng { state: rng.state }
    }
}

/// Sampling interface, mirroring the parts of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open or inclusive integer range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

/// A range that can be sampled uniformly, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
