//! Offline stand-in for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal wall-clock bench runner with criterion's surface shape:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. It reports mean wall time per iteration; there
//! are no statistics, baselines, or HTML reports.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            samples: 20,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            total_nanos: 0,
            iters: 0,
        };
        f(&mut b);
        let mean = b.total_nanos.checked_div(b.iters).unwrap_or(0);
        println!("  {id}: {mean} ns/iter ({} iters)", b.iters);
        self
    }

    /// Ends the group (shape-compatible no-op).
    pub fn finish(&mut self) {}
}

/// Passed to the closure given to `bench_function`; times the routine.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u128,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Bundles bench functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
